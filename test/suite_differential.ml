(* Differential testing of the evaluation strategies (ISSUE PR 2).

   Random range-restricted datalog programs are evaluated under SLG with
   Local scheduling, SLG with Batched scheduling, and the bottom-up
   (magic-set) engine of lib/bottomup; all three must produce identical
   answer sets.  Random stratified ground programs with negation are
   cross-checked against the well-founded model computed by
   lib/wfs/ground.ml — on stratified programs SLG's tnot/1 must agree
   exactly with the (total) well-founded model. *)

open Xsb

let runs = 200

(* --- positive datalog: SLG Local vs SLG Batched vs bottom-up --- *)

let table_directive = ":- table p/2, q/2, r/2.\n"

(* answers as a sorted list of argument-string tuples; [~traced] runs
   the same query with every sink attached and profiling on, which must
   be purely observational (ISSUE PR 3) *)
let slg_answer_set ?(traced = false) ~scheduling text goal =
  let s = Session.create ~scheduling () in
  if traced then begin
    Session.add_sink s Obs.Sink.Null;
    Session.add_sink s (Obs.Sink.Ring (Obs.Ring.create 256));
    Session.set_profiling s true
  end;
  Session.consult s (table_directive ^ text);
  List.sort_uniq compare
    (List.map
       (fun (sol : Engine.solution) ->
         List.map (fun (_, v) -> Term.to_string v) sol.Engine.bindings)
       (Session.query s goal))

let canon_args c =
  match Canon.to_term c with
  | Term.Struct (_, args) -> List.map Term.to_string (Array.to_list args)
  | t -> [ Term.to_string t ]

(* [keep] selects the argument positions that are free in the goal, so the
   tuples line up with the SLG bindings of the same query *)
let bottomup_answer_set text goal ~keep =
  let program = Datalog.of_clauses (Parser.program_of_string text) in
  let goal_term = Parser.term_of_string goal in
  let atoms =
    match Magic.answers program goal_term with
    | atoms -> atoms
    | exception Magic.Not_applicable _ -> Bottomup.answers (Bottomup.run program) goal_term
  in
  List.sort_uniq compare
    (List.map (fun c -> List.filteri (fun i _ -> List.mem i keep) (canon_args c)) atoms)

let check_goal text goal ~keep =
  let local = slg_answer_set ~scheduling:Machine.Local text goal in
  let batched = slg_answer_set ~scheduling:Machine.Batched text goal in
  let bottomup = bottomup_answer_set text goal ~keep in
  if local <> batched then
    QCheck2.Test.fail_reportf "local/batched disagree on %s:@.%s" goal text;
  if local <> bottomup then
    QCheck2.Test.fail_reportf "SLG/bottom-up disagree on %s (%d vs %d answers):@.%s" goal
      (List.length local) (List.length bottomup) text;
  true

let datalog_differential =
  QCheck2.Test.make ~count:runs ~name:"SLG local = SLG batched = bottom-up"
    ~print:Generators.datalog_text Generators.datalog_program_gen (fun dp ->
      let text = Generators.datalog_text dp in
      let heads =
        List.sort_uniq compare (List.map (fun r -> r.Generators.dr_head) dp.Generators.dp_rules)
      in
      List.for_all
        (fun h ->
          (* the fully open query exercises plain semi-naive evaluation,
             the bound query exercises the magic-set rewriting *)
          check_goal text (h ^ "(X,Y)") ~keep:[ 0; 1 ]
          && check_goal text (h ^ "(2,X)") ~keep:[ 1 ])
        heads)

(* --- call subsumption: SLG with subsumptive tables vs variant tables
   vs bottom-up, over query sequences biased toward repeated calls with
   shared shapes (an open general call, then instances of it, which the
   subsumptive engine serves from the general table) --- *)

let subsumption_directive = ":- table p/2 as subsumption, q/2 as subsumption, r/2 as subsumption.\n"

let session_answers s goal =
  List.sort_uniq compare
    (List.map
       (fun (sol : Engine.solution) ->
         List.map (fun (_, v) -> Term.to_string v) sol.Engine.bindings)
       (Session.query s goal))

let subsumption_differential =
  QCheck2.Test.make ~count:runs ~name:"call subsumption = variant tabling = bottom-up"
    ~print:Generators.datalog_text Generators.datalog_program_gen (fun dp ->
      let text = Generators.datalog_text dp in
      let heads =
        List.sort_uniq compare (List.map (fun r -> r.Generators.dr_head) dp.Generators.dp_rules)
      in
      List.for_all
        (fun scheduling ->
          (* one session per mode, shared across the whole query
             sequence: the later specific calls hit tables the earlier
             general calls filled *)
          let sub = Session.create ~scheduling () in
          Session.consult sub (subsumption_directive ^ text);
          let var = Session.create ~scheduling () in
          Session.consult var (table_directive ^ text);
          List.for_all
            (fun h ->
              List.for_all
                (fun (goal, keep) ->
                  let goal = h ^ goal in
                  let a = session_answers sub goal in
                  let b = session_answers var goal in
                  (a = b
                  || QCheck2.Test.fail_reportf
                       "subsumption/variant disagree on %s (%s):@.%s" goal
                       (Machine.scheduling_to_string scheduling)
                       text)
                  &&
                  match keep with
                  | None -> true (* non-linear goal: magic rewriting not compared *)
                  | Some keep ->
                      let bu = bottomup_answer_set text goal ~keep in
                      a = bu
                      || QCheck2.Test.fail_reportf
                           "subsumption/bottom-up disagree on %s (%d vs %d answers):@.%s" goal
                           (List.length a) (List.length bu) text)
                [
                  ("(X,Y)", Some [ 0; 1 ]);
                  ("(2,X)", Some [ 1 ]);
                  ("(X,3)", Some [ 0 ]);
                  ("(2,3)", Some []);
                  ("(A,A)", None);
                ])
            heads)
        [ Machine.Local; Machine.Batched ])

(* --- tracing and profiling are purely observational --- *)

let tracing_differential =
  QCheck2.Test.make ~count:(runs / 4) ~name:"tracing does not change answer sets"
    ~print:Generators.datalog_text Generators.datalog_program_gen (fun dp ->
      let text = Generators.datalog_text dp in
      let heads =
        List.sort_uniq compare (List.map (fun r -> r.Generators.dr_head) dp.Generators.dp_rules)
      in
      List.for_all
        (fun h ->
          let goal = h ^ "(X,Y)" in
          List.for_all
            (fun scheduling ->
              let plain = slg_answer_set ~scheduling text goal in
              let traced = slg_answer_set ~traced:true ~scheduling text goal in
              plain = traced
              || QCheck2.Test.fail_reportf "tracing changed the answers of %s:@.%s" goal text)
            [ Machine.Local; Machine.Batched ])
        heads)

(* --- stratified negation: SLG tnot vs the well-founded model --- *)

let stratified_differential ?(directive = ":- table p0/1, p1/1, p2/1.\n") ?(warm = [])
    ~scheduling name =
  QCheck2.Test.make ~count:runs ~name ~print:Generators.stratified_text Generators.stratified_gen
    (fun rules ->
      let text = directive ^ Generators.stratified_text rules in
      let session = Session.create ~scheduling () in
      Session.consult session text;
      (* under subsumption, open warm-up queries complete the general
         tables so every ground probe below is a subsumed call *)
      List.iter (fun g -> ignore (Session.query session g)) warm;
      let ground = Ground.create () in
      List.iter
        (fun (r : Generators.ground_rule) ->
          Ground.add_rule ground
            (Generators.ground_atom_canon r.Generators.gr_head)
            ~pos:(List.map Generators.ground_atom_canon r.Generators.gr_pos)
            ~neg:(List.map Generators.ground_atom_canon r.Generators.gr_neg))
        rules;
      List.for_all
        (fun atom ->
          let goal = Generators.ground_atom_text atom in
          let slg = Session.succeeds session goal in
          match Ground.wfs ground (Generators.ground_atom_canon atom) with
          | Ground.True ->
              slg || QCheck2.Test.fail_reportf "SLG fails on true atom %s:@.%s" goal text
          | Ground.False ->
              (not slg) || QCheck2.Test.fail_reportf "SLG proves false atom %s:@.%s" goal text
          | Ground.Undefined ->
              QCheck2.Test.fail_reportf "stratified program has undefined atom %s:@.%s" goal text)
        Generators.stratified_universe)

(* --- non-stratified negation: SLG well-founded vs the alternating
   fixpoint of lib/wfs/ground.ml --- *)

let truth_name = function
  | Ground.True -> "true"
  | Ground.False -> "false"
  | Ground.Undefined -> "undefined"

let wfs_differential =
  QCheck2.Test.make ~count:runs ~name:"SLG well-founded = alternating fixpoint"
    ~print:Generators.stratified_text Generators.nonstratified_gen (fun rules ->
      let text = ":- table p0/1, p1/1, p2/1.\n" ^ Generators.stratified_text rules in
      let session = Session.create ~mode:Machine.Well_founded () in
      Session.consult session text;
      let ground = Ground.create () in
      List.iter
        (fun (r : Generators.ground_rule) ->
          Ground.add_rule ground
            (Generators.ground_atom_canon r.Generators.gr_head)
            ~pos:(List.map Generators.ground_atom_canon r.Generators.gr_pos)
            ~neg:(List.map Generators.ground_atom_canon r.Generators.gr_neg))
        rules;
      List.for_all
        (fun atom ->
          let goal = Generators.ground_atom_text atom in
          let slg =
            match Session.wfs_query session goal with
            | [] -> Ground.False
            | [ { Residual.truth; _ } ] -> truth
            | _ -> QCheck2.Test.fail_reportf "multiple answers for %s:@.%s" goal text
          in
          let expect = Ground.wfs ground (Generators.ground_atom_canon atom) in
          slg = expect
          || QCheck2.Test.fail_reportf "SLG says %s, WFS says %s on %s:@.%s" (truth_name slg)
               (truth_name expect) goal text)
        Generators.stratified_universe)

(* --- incremental tabling: random assert/retract interleavings must
   agree with evaluating from scratch (here: BFS ground truth) --- *)

let incremental_program =
  ":- table reach/2 as incremental.\n\
   reach(X,Y) :- edge(X,Y).\n\
   reach(X,Z) :- reach(X,Y), edge(Y,Z)."

let mutation_script_gen =
  QCheck2.Gen.(
    pair
      (Generators.edges_gen ~n:5 ~m:6)
      (list_size (int_range 1 8) (pair bool (pair (int_range 1 5) (int_range 1 5)))))

let print_mutation_script (init, ops) =
  Printf.sprintf "init: %s\nops: %s"
    (String.concat " " (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) init))
    (String.concat " "
       (List.map
          (fun (add, (a, b)) -> Printf.sprintf "%s%d-%d" (if add then "+" else "-") a b)
          ops))

let rec remove_one x = function
  | [] -> []
  | y :: rest -> if x = y then rest else y :: remove_one x rest

let incremental_differential =
  QCheck2.Test.make ~count:runs ~name:"incremental tabling = from-scratch under mutations"
    ~print:print_mutation_script mutation_script_gen (fun (init, ops) ->
      let s = Session.create () in
      Session.consult s incremental_program;
      List.iter
        (fun (a, b) ->
          ignore (Session.succeeds s (Printf.sprintf "assert(edge(%d,%d))" a b)))
        init;
      let current = ref init in
      let check stage =
        let got =
          List.sort_uniq compare
            (List.map
               (fun (sol : Engine.solution) ->
                 match sol.Engine.bindings with
                 | [ (_, v) ] -> Term.to_string v
                 | _ -> QCheck2.Test.fail_reportf "bad binding shape"
               )
               (Session.query s "reach(1,X)"))
        in
        let expect =
          List.sort_uniq compare (List.map string_of_int (Generators.reachable !current 1))
        in
        got = expect
        || QCheck2.Test.fail_reportf "reach(1,X) diverged %s: got [%s], expected [%s]@.%s" stage
             (String.concat ";" got) (String.concat ";" expect)
             (print_mutation_script (init, ops))
      in
      check "initially"
      && List.for_all
           (fun (add, (a, b)) ->
             let text = Printf.sprintf "edge(%d,%d)" a b in
             (if add then begin
                ignore (Session.succeeds s (Printf.sprintf "assert(%s)" text));
                current := (a, b) :: !current
              end
              else if Session.succeeds s (Printf.sprintf "retract(%s)" text) then
                current := remove_one (a, b) !current);
             check (Printf.sprintf "after %s%s" (if add then "+" else "-") text))
           ops)

let suite =
  [
    QCheck_alcotest.to_alcotest datalog_differential;
    QCheck_alcotest.to_alcotest subsumption_differential;
    QCheck_alcotest.to_alcotest tracing_differential;
    QCheck_alcotest.to_alcotest (stratified_differential ~scheduling:Machine.Local "stratified tnot = WFS (local)");
    QCheck_alcotest.to_alcotest
      (stratified_differential ~scheduling:Machine.Batched "stratified tnot = WFS (batched)");
    QCheck_alcotest.to_alcotest
      (stratified_differential
         ~directive:":- table p0/1 as subsumption, p1/1 as subsumption, p2/1 as subsumption.\n"
         ~warm:[ "p0(X)"; "p1(X)"; "p2(X)" ] ~scheduling:Machine.Local
         "stratified tnot = WFS under call subsumption (local)");
    QCheck_alcotest.to_alcotest
      (stratified_differential
         ~directive:":- table p0/1 as subsumption, p1/1 as subsumption, p2/1 as subsumption.\n"
         ~warm:[ "p0(X)"; "p1(X)"; "p2(X)" ] ~scheduling:Machine.Batched
         "stratified tnot = WFS under call subsumption (batched)");
    QCheck_alcotest.to_alcotest wfs_differential;
    QCheck_alcotest.to_alcotest incremental_differential;
  ]
