(* The query service (ISSUE PR 4): wire protocol round-trips, the
   in-process server end to end — concurrency with per-session
   isolation, deadlines, backpressure, graceful shutdown — and the
   bounded-query engine API the server is built on. *)

open Xsb_server

let t = Alcotest.test_case
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let tc_program =
  ":- table path/2.\n\
   path(X,Y) :- edge(X,Y).\n\
   path(X,Y) :- path(X,Z), edge(Z,Y).\n\
   edge(1,2). edge(2,3). edge(3,4). edge(4,5). edge(5,1).\n"

(* an SLD loop: never terminates, never answers — the canonical
   runaway derivation for deadline tests *)
let loop_program = "loop(X) :- loop(X).\n"

(* --- protocol framing --- *)

let roundtrip_request req =
  let path = Filename.temp_file "proto" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_bin path (fun oc -> Protocol.write_request oc req);
      In_channel.with_open_bin path Protocol.read_request)

let roundtrip_reply reply =
  let path = Filename.temp_file "proto" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_bin path (fun oc -> Protocol.write_reply oc reply);
      In_channel.with_open_bin path Protocol.read_reply)

let read_request_of_string s =
  let path = Filename.temp_file "proto" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_bin path (fun oc -> output_string oc s);
      In_channel.with_open_bin path Protocol.read_request)

let protocol_cases =
  [
    t "request round-trip with every field" `Quick (fun () ->
        let req =
          Protocol.request ~fmt:Protocol.Fast ~limit:7 ~timeout_ms:250 ~max_steps:9000
            Protocol.Consult "p(1).\np(2).\n"
        in
        let got = roundtrip_request req in
        check_bool "op" true (got.Protocol.op = Protocol.Consult);
        check_bool "fmt" true (got.Protocol.fmt = Protocol.Fast);
        check_string "payload" req.Protocol.payload got.Protocol.payload;
        check_bool "limit" true (got.Protocol.limit = Some 7);
        check_bool "timeout" true (got.Protocol.timeout_ms = Some 250);
        check_bool "steps" true (got.Protocol.max_steps = Some 9000));
    t "payload bytes are opaque (binary-safe framing)" `Quick (fun () ->
        let payload = "\x00\x01\xff\nANSWER 3\nnot a frame\r\n" in
        let got = roundtrip_request (Protocol.request Protocol.Query payload) in
        check_string "binary payload" payload got.Protocol.payload);
    t "reply round-trips" `Quick (fun () ->
        (match roundtrip_reply (Protocol.Ok_ "pong") with
        | Protocol.Ok_ s -> check_string "ok" "pong" s
        | _ -> Alcotest.fail "expected OK");
        (match roundtrip_reply (Protocol.Done { count = 3; more = true }) with
        | Protocol.Done { count; more } ->
            check_int "count" 3 count;
            check_bool "more" true more
        | _ -> Alcotest.fail "expected DONE");
        match roundtrip_reply (Protocol.Err (Protocol.Overloaded, "queue full")) with
        | Protocol.Err (Protocol.Overloaded, msg) -> check_string "msg" "queue full" msg
        | _ -> Alcotest.fail "expected ERR OVERLOADED");
    t "malformed frames raise Bad_frame, not Failure" `Quick (fun () ->
        let bad s =
          match read_request_of_string s with
          | exception Protocol.Bad_frame _ -> ()
          | exception End_of_file -> ()
          | _ -> Alcotest.failf "accepted malformed frame %S" s
        in
        bad "HTTP/1.1 GET /\n";
        bad "XSB1 QUERY notalen\n";
        bad "XSB1 QUERY -3\n";
        bad "XSB1 FROBNICATE 0\n";
        bad "XSB1 QUERY 0 limit=x\n";
        bad "XSB1 QUERY 999999999999\n";
        bad "XSB1 QUERY 10\nshort";
        (* truncated payload *)
        bad (String.make 8192 'A'));
    (* unbounded header *)
  ]

(* --- the bounded-query engine API (satellite: typed interruption) --- *)

let bounded_cases =
  [
    t "run_bounded: step budget returns `Timeout, not an exception" `Quick (fun () ->
        let s = Xsb.Session.create () in
        Xsb.Session.consult s loop_program;
        match Xsb.Engine.run_bounded_string ~max_steps:5_000 (Xsb.Session.engine s) "loop(1)" with
        | `Timeout [] -> ()
        | `Timeout _ -> Alcotest.fail "loop/1 cannot have answers"
        | `Answers _ | `Truncated _ -> Alcotest.fail "expected `Timeout");
    t "run_bounded: a tighter engine-wide bound still raises Step_limit" `Quick (fun () ->
        let s = Xsb.Session.create () in
        Xsb.Session.consult s loop_program;
        let engine = Xsb.Session.engine s in
        let arm budget =
          Xsb.Engine.set_max_steps engine ((Xsb.Session.stats s).Xsb.Machine.st_steps + budget)
        in
        (* the engine-wide bound is the binding one: its overrun must
           keep raising, not be misreported as this query's `Timeout *)
        arm 100;
        (match Xsb.Engine.run_bounded_string ~max_steps:10_000_000 engine "loop(1)" with
        | exception Xsb.Machine.Step_limit -> ()
        | _ -> Alcotest.fail "expected Step_limit from the engine-wide bound");
        (* a non-positive per-query budget installs nothing at all *)
        arm 100;
        (match Xsb.Engine.run_bounded_string ~max_steps:0 engine "loop(1)" with
        | exception Xsb.Machine.Step_limit -> ()
        | _ -> Alcotest.fail "expected Step_limit with a non-positive per-query budget");
        (* with the engine-wide bound looser, the per-query budget binds
           and interruption is the typed result again *)
        arm 10_000_000;
        (match Xsb.Engine.run_bounded_string ~max_steps:5_000 engine "loop(1)" with
        | `Timeout _ -> ()
        | _ -> Alcotest.fail "expected `Timeout from the per-query budget");
        Xsb.Engine.set_max_steps engine 0);
    t "run_bounded: wall-clock stop returns `Timeout" `Quick (fun () ->
        let s = Xsb.Session.create () in
        Xsb.Session.consult s loop_program;
        let deadline = Unix.gettimeofday () +. 0.1 in
        let stop () = Unix.gettimeofday () >= deadline in
        match Xsb.Engine.run_bounded_string ~stop (Xsb.Session.engine s) "loop(1)" with
        | `Timeout _ -> ()
        | `Answers _ | `Truncated _ -> Alcotest.fail "expected `Timeout");
    t "run_bounded: limit returns `Truncated with partial rows" `Quick (fun () ->
        let s = Xsb.Session.create () in
        Xsb.Session.consult s tc_program;
        match Xsb.Engine.run_bounded_string ~limit:2 (Xsb.Session.engine s) "path(1,X)" with
        | `Truncated rows -> check_bool "at least 2" true (List.length rows >= 2)
        | `Answers rows ->
            (* scheduling may have completed the table before the poll *)
            check_int "all answers" 5 (List.length rows)
        | `Timeout _ -> Alcotest.fail "expected `Truncated");
    t "regression: Step_limit mid-derivation leaves table space consistent" `Quick (fun () ->
        (* a 60-edge chain: the transitive closure needs far more than
           the budget below, so the interrupt lands mid-derivation *)
        let n = 60 in
        let chain = Buffer.create 1024 in
        Buffer.add_string chain ":- table path/2.\n";
        Buffer.add_string chain "path(X,Y) :- edge(X,Y).\n";
        Buffer.add_string chain "path(X,Y) :- path(X,Z), edge(Z,Y).\n";
        for i = 1 to n do
          Buffer.add_string chain (Printf.sprintf "edge(%d,%d).\n" i (i + 1))
        done;
        let s = Xsb.Session.create () in
        Xsb.Session.consult s (Buffer.contents chain);
        let engine = Xsb.Session.engine s in
        (* interrupt a tabled evaluation mid-flight... *)
        (match Xsb.Engine.run_bounded_string ~max_steps:50 engine "path(1,X)" with
        | `Timeout _ -> ()
        | `Answers _ | `Truncated _ -> Alcotest.fail "budget of 50 should interrupt");
        (* ...the next queries on the same session still work, with
           complete answer sets *)
        check_int "tc after interrupt" n (Xsb.Session.count s "path(1,X)");
        check_int "again (completed table)" n (Xsb.Session.count s "path(1,X)");
        (* and an engine-wide Step_limit (the pre-existing escaping
           exception) also leaves a usable engine behind *)
        Xsb.Engine.reset_tables engine;
        Xsb.Engine.set_max_steps engine ((Xsb.Session.stats s).Xsb.Machine.st_steps + 50);
        (match Xsb.Session.count s "path(1,X)" with
        | exception Xsb.Machine.Step_limit -> ()
        | _ -> Alcotest.fail "expected Step_limit with a 50-step engine-wide bound");
        Xsb.Engine.set_max_steps engine 0;
        check_int "recovers" n (Xsb.Session.count s "path(1,X)"));
  ]

(* --- negative inputs on the CONSULT load paths (satellite) --- *)

let save_tc_image () =
  let db = Xsb.Database.create () in
  ignore (Xsb.Loader.consult_string db "edge(1,2). edge(2,3). p(f(g(1)),[a,b]).");
  let path = Filename.temp_file "objfile" ".xwam" in
  Xsb.Obj_file.save_all db path;
  let bytes = In_channel.with_open_bin path In_channel.input_all in
  Sys.remove path;
  bytes

let expect_bad_object what bytes =
  let db = Xsb.Database.create () in
  match Xsb.Obj_file.load_string db bytes with
  | exception Xsb.Obj_file.Bad_object_file _ -> ()
  | exception e ->
      Alcotest.failf "%s: expected Bad_object_file, got %s" what (Printexc.to_string e)
  | _ -> Alcotest.failf "%s: corrupt image loaded" what

let negative_cases =
  [
    t "object files round-trip through load_string" `Quick (fun () ->
        let bytes = save_tc_image () in
        let db = Xsb.Database.create () in
        check_int "clauses" 3 (Xsb.Obj_file.load_string db bytes);
        check_bool "edge present" true (Xsb.Database.find db "edge" 2 <> None));
    t "truncated object images raise Bad_object_file" `Quick (fun () ->
        let bytes = save_tc_image () in
        List.iter
          (fun keep ->
            if keep < String.length bytes then
              expect_bad_object
                (Printf.sprintf "truncated to %d bytes" keep)
                (String.sub bytes 0 keep))
          [ 0; 4; 8; 11; 20; String.length bytes / 2; String.length bytes - 1 ]);
    t "bit-flipped object images raise Bad_object_file" `Quick (fun () ->
        let bytes = save_tc_image () in
        List.iter
          (fun pos ->
            let b = Bytes.of_string bytes in
            Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x41));
            expect_bad_object (Printf.sprintf "flip at %d" pos) (Bytes.to_string b))
          [ 0; 9; 30; String.length bytes - 1 ];
        expect_bad_object "pure garbage" (String.make 200 'Z'));
    t "forged digests do not get malicious payloads past the decoder" `Quick (fun () ->
        (* regression: the header digest is computed from the payload
           itself, so any client can forge a "valid" image over CONSULT
           fmt=obj — it proves integrity, not origin. The decoder must
           reject adversarial payloads on its own, with a typed error. *)
        let forged payload =
          let b = Buffer.create (String.length payload + 28) in
          Buffer.add_string b "XSBOBJ03";
          List.iter
            (fun shift -> Buffer.add_char b (Char.chr ((String.length payload lsr shift) land 0xff)))
            [ 24; 16; 8; 0 ];
          Buffer.add_string b (Digest.string payload);
          Buffer.add_string b payload;
          Buffer.contents b
        in
        expect_bad_object "garbage payload" (forged (String.make 64 '\xee'));
        expect_bad_object "empty payload" (forged "");
        expect_bad_object "huge image count" (forged "\x7f\xff\xff\xff");
        expect_bad_object "huge string length" (forged "\x00\x00\x00\x01\xff\xff\xff\xff");
        (* a valid payload with extra bytes smuggled after the image *)
        let image = save_tc_image () in
        let payload = String.sub image 28 (String.length image - 28) in
        expect_bad_object "trailing bytes" (forged (payload ^ "\x00"));
        (* 200k-deep f(f(...f(_)...)): must neither blow the stack nor
           load; the clause-shape check rejects it as a typed error *)
        let b = Buffer.create (1 lsl 21) in
        let u32 n =
          List.iter (fun s -> Buffer.add_char b (Char.chr ((n lsr s) land 0xff))) [ 24; 16; 8; 0 ]
        in
        let str s =
          u32 (String.length s);
          Buffer.add_string b s
        in
        u32 1 (* one image *);
        str "p";
        u32 1 (* arity *);
        Buffer.add_string b "\x00\x00\x01" (* static, untabled, First_string index *);
        u32 1 (* one clause *);
        for _ = 1 to 200_000 do
          Buffer.add_char b '\x04';
          str "f";
          u32 1
        done;
        Buffer.add_string b "\x00\x00\x00\x00\x00" (* CVar 0 leaf *);
        expect_bad_object "200k-deep nesting" (forged (Buffer.contents b)));
    t "obj_file.load on a truncated file raises Bad_object_file" `Quick (fun () ->
        let bytes = save_tc_image () in
        let path = Filename.temp_file "objfile" ".xwam" in
        Out_channel.with_open_bin path (fun oc ->
            output_string oc (String.sub bytes 0 (String.length bytes - 6)));
        let db = Xsb.Database.create () in
        (match Xsb.Obj_file.load db path with
        | exception Xsb.Obj_file.Bad_object_file _ -> ()
        | exception e -> Alcotest.failf "expected Bad_object_file, got %s" (Printexc.to_string e)
        | _ -> Alcotest.fail "truncated file loaded");
        Sys.remove path);
    t "malformed fast-load rows raise Syntax, never Failure" `Quick (fun () ->
        let bad text =
          let db = Xsb.Database.create () in
          match Xsb.Fast_load.string_ db text with
          | exception Xsb.Fast_load.Syntax _ -> ()
          | exception e ->
              Alcotest.failf "%S: expected Syntax, got %s" text (Printexc.to_string e)
          | _ -> Alcotest.failf "%S: loaded" text
        in
        bad "p(1";
        bad "p(1) q(2).";
        bad "p(1).\nq(";
        bad "'unterminated";
        bad "p([1,2).";
        bad "42.";
        (* ill-formed head: a number *)
        bad "[a,b].";
        (* ill-formed head: a list *)
        bad "p(1,).");
  ]

(* --- the server end to end --- *)

let with_server ?(cfg = Server.default_config) f =
  let server = Server.start { cfg with port = 0 } in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f server)

let ok = function
  | Ok payload -> payload
  | Error { Client.code; message } ->
      Alcotest.failf "unexpected error %s: %s" (Protocol.err_code_name code) message

let with_client server f =
  let c = Client.connect (Server.port server) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let rows_of = function
  | Client.Rows { rows; _ } -> rows
  | Client.Query_timeout _ -> Alcotest.fail "unexpected timeout"
  | Client.Query_error { code; message } ->
      Alcotest.failf "unexpected query error %s: %s" (Protocol.err_code_name code) message

let server_cases =
  [
    t "ping, consult, query, statistics, abolish" `Quick (fun () ->
        with_server (fun server ->
            with_client server (fun c ->
                check_string "pong" "pong" (ok (Client.ping c));
                ignore (ok (Client.consult c tc_program));
                let rows = rows_of (Client.query c "path(1,X)") in
                check_int "answers" 5 (List.length rows);
                check_bool "first row" true (List.mem "X = 2" rows);
                let stats = ok (Client.statistics c) in
                check_bool "stats mention subgoals" true
                  (String.length stats > 0
                  && String.sub stats 0 (min 9 (String.length stats)) = "subgoals:");
                ignore (ok (Client.abolish c));
                check_int "after abolish" 5 (List.length (rows_of (Client.query c "path(1,X)"))))));
    t "row limit truncates the stream" `Quick (fun () ->
        with_server (fun server ->
            with_client server (fun c ->
                ignore (ok (Client.consult c tc_program));
                match Client.query ~limit:2 c "path(1,X)" with
                | Client.Rows { rows; truncated } ->
                    check_int "rows" 2 (List.length rows);
                    check_bool "truncated" true truncated
                | _ -> Alcotest.fail "expected truncated rows")));
    t "parse errors are typed, connection survives" `Quick (fun () ->
        with_server (fun server ->
            with_client server (fun c ->
                (match Client.query c "path(1," with
                | Client.Query_error { code = Protocol.Parse_error; _ } -> ()
                | _ -> Alcotest.fail "expected PARSE");
                (match Client.consult c "p(1" with
                | Error { code = Protocol.Parse_error; _ } -> ()
                | _ -> Alcotest.fail "expected PARSE on consult");
                check_string "still alive" "pong" (ok (Client.ping c)))));
    t "corrupt CONSULT payloads (fast/obj) are typed errors" `Quick (fun () ->
        with_server (fun server ->
            with_client server (fun c ->
                (match Client.consult ~fmt:Protocol.Fast c "edge(1,2). 42." with
                | Error { code = Protocol.Parse_error; _ } -> ()
                | _ -> Alcotest.fail "expected PARSE on bad fast rows");
                let image = save_tc_image () in
                let corrupt = String.sub image 0 (String.length image - 3) in
                (match Client.consult ~fmt:Protocol.Obj c corrupt with
                | Error { code = Protocol.Parse_error; _ } -> ()
                | _ -> Alcotest.fail "expected PARSE on truncated image");
                (* the valid image still loads on the same connection *)
                (match Client.consult ~fmt:Protocol.Obj c image with
                | Ok _ -> ()
                | Error _ -> Alcotest.fail "valid image refused");
                check_int "edge facts served" 2
                  (List.length (rows_of (Client.query c "edge(X,Y)"))))));
    t "a runaway derivation returns TIMEOUT (step budget)" `Quick (fun () ->
        with_server (fun server ->
            with_client server (fun c ->
                ignore (ok (Client.consult c loop_program));
                match Client.query ~max_steps:20_000 ~timeout_ms:60_000 c "loop(1)" with
                | Client.Query_timeout [] -> ()
                | Client.Query_timeout _ -> Alcotest.fail "loop/1 cannot answer"
                | _ -> Alcotest.fail "expected TIMEOUT")));
    t "a runaway derivation returns TIMEOUT (wall deadline)" `Quick (fun () ->
        let cfg = { Server.default_config with default_max_steps = 0 } in
        with_server ~cfg (fun server ->
            with_client server (fun c ->
                ignore (ok (Client.consult c loop_program));
                let t0 = Unix.gettimeofday () in
                (match Client.query ~timeout_ms:200 c "loop(1)" with
                | Client.Query_timeout _ -> ()
                | _ -> Alcotest.fail "expected TIMEOUT");
                let elapsed = Unix.gettimeofday () -. t0 in
                check_bool "returned promptly" true (elapsed < 5.0);
                (* the worker is free again: the same connection answers *)
                check_string "alive" "pong" (ok (Client.ping c)))));
  ]

(* 8 concurrent clients with interleaved ASSERT / QUERY / ABOLISH; each
   session must behave exactly like a single-client run *)
let isolation_case =
  t "concurrency: 8 clients, per-session isolation" `Slow (fun () ->
      (* single-client expected answers for client [i] *)
      let expected i =
        let s = Xsb.Session.create () in
        Xsb.Session.consult s tc_program;
        Xsb.Session.consult s (Printf.sprintf "edge(5,%d).\n" (100 + i));
        List.length (Xsb.Session.query s "path(1,X)")
      in
      let cfg = { Server.default_config with workers = 4; queue_capacity = 64 } in
      with_server ~cfg (fun server ->
          let n = 8 in
          let failures = Array.make n "" in
          let run i () =
            try
              with_client server (fun c ->
                  ignore (ok (Client.consult c tc_program));
                  (* private fact: only this session may ever see it *)
                  ignore (ok (Client.assert_ c (Printf.sprintf "edge(5,%d)" (100 + i))));
                  for _round = 1 to 3 do
                    let rows = rows_of (Client.query c "path(1,X)") in
                    let want = expected i in
                    if List.length rows <> want then
                      failwith
                        (Printf.sprintf "round answers: got %d, want %d" (List.length rows) want);
                    (* the private node is visible, other clients' are not *)
                    if not (List.mem (Printf.sprintf "X = %d" (100 + i)) rows) then
                      failwith "own fact missing";
                    List.iter
                      (fun j ->
                        if j <> i && List.mem (Printf.sprintf "X = %d" (100 + j)) rows then
                          failwith (Printf.sprintf "saw client %d's fact" j))
                      (List.init n Fun.id);
                    ignore (ok (Client.abolish c))
                  done)
            with e -> failures.(i) <- Printexc.to_string e
          in
          let threads = List.init n (fun i -> Thread.create (run i) ()) in
          List.iter Thread.join threads;
          Array.iteri
            (fun i msg -> if msg <> "" then Alcotest.failf "client %d: %s" i msg)
            failures))

let backpressure_case =
  t "backpressure: full queue answers OVERLOADED" `Slow (fun () ->
      let cfg =
        {
          Server.default_config with
          workers = 1;
          queue_capacity = 1;
          default_max_steps = 0 (* wall deadlines only, for controlled durations *);
        }
      in
      with_server ~cfg (fun server ->
          let slow_query timeout_ms () =
            with_client server (fun c ->
                ignore (ok (Client.consult c loop_program));
                ignore (Client.query ~timeout_ms c "loop(1)"))
          in
          with_client server (fun c ->
              (* consult while the server is idle: once the worker and the
                 queue slot are both held, every submission is refused *)
              ignore (ok (Client.consult c "p(1).\n"));
              (* occupy the single worker... *)
              let t1 = Thread.create (slow_query 1_000) () in
              Thread.delay 0.25;
              (* ...fill the one queue slot... *)
              let t2 = Thread.create (slow_query 300) () in
              Thread.delay 0.25;
              (* ...and the next submission must be refused immediately *)
              let t0 = Unix.gettimeofday () in
              (match Client.query c "p(X)" with
              | Client.Query_error { code = Protocol.Overloaded; _ } ->
                  check_bool "refused promptly" true (Unix.gettimeofday () -. t0 < 0.5)
              | Client.Rows _ -> Alcotest.fail "expected OVERLOADED, got rows"
              | Client.Query_timeout _ -> Alcotest.fail "expected OVERLOADED, got timeout"
              | Client.Query_error { code; _ } ->
                  Alcotest.failf "expected OVERLOADED, got %s" (Protocol.err_code_name code));
              Thread.join t1;
              Thread.join t2)))

let shutdown_case =
  t "graceful shutdown drains in-flight requests" `Slow (fun () ->
      let log_path = Filename.temp_file "access" ".jsonl" in
      let log_oc = open_out log_path in
      let cfg =
        {
          Server.default_config with
          workers = 2;
          queue_capacity = 16;
          default_max_steps = 0;
          access_log = Some log_oc;
        }
      in
      let server = Server.start { cfg with port = 0 } in
      let n = 4 in
      let outcomes = Array.make n `Pending in
      let run i () =
        try
          with_client server (fun c ->
              ignore (ok (Client.consult c loop_program));
              match Client.query ~timeout_ms:400 c "loop(1)" with
              | Client.Query_timeout _ -> outcomes.(i) <- `Timeout
              | Client.Rows _ -> outcomes.(i) <- `Rows
              | Client.Query_error { code; _ } -> outcomes.(i) <- `Err code)
        with e -> outcomes.(i) <- `Crash (Printexc.to_string e)
      in
      let threads = List.init n (fun i -> Thread.create (run i) ()) in
      (* let the slow queries get in flight, then stop: every accepted
         request must still complete with its full typed reply *)
      Thread.delay 0.2;
      Server.stop server;
      List.iter Thread.join threads;
      Array.iteri
        (fun i outcome ->
          match outcome with
          | `Timeout -> ()
          | `Err (Protocol.Shutting_down | Protocol.Overloaded) ->
              (* refused before execution — a typed reply, not a drop *)
              ()
          | `Pending -> Alcotest.failf "client %d never completed" i
          | `Crash msg -> Alcotest.failf "client %d: connection broken: %s" i msg
          | `Rows -> Alcotest.failf "client %d: loop/1 answered?!" i
          | `Err code ->
              Alcotest.failf "client %d: unexpected %s" i (Protocol.err_code_name code))
        outcomes;
      (* the server refuses new connections once stopped *)
      (match Client.connect (Server.port server) with
      | exception Unix.Unix_error _ -> ()
      | c ->
          (* the TCP stack may still complete the handshake; the session
             must at least be unusable *)
          (match Client.ping c with
          | exception _ -> ()
          | Ok _ -> Alcotest.fail "stopped server answered a ping"
          | Error _ -> ());
          Client.close c);
      close_out log_oc;
      (* the access log is well-formed JSONL covering the drained work *)
      let lines = In_channel.with_open_bin log_path In_channel.input_lines in
      Sys.remove log_path;
      check_bool "log nonempty" true (List.length lines >= n);
      let timeouts = ref 0 in
      List.iter
        (fun line ->
          match Xsb.Json.of_string line with
          | Error msg -> Alcotest.failf "bad JSONL line %S: %s" line msg
          | Ok json ->
              List.iter
                (fun field ->
                  if Xsb.Json.member field json = None then
                    Alcotest.failf "record missing %s: %s" field line)
                [ "ts_us"; "id"; "conn"; "op"; "pred"; "answers"; "steps"; "wall_us"; "outcome" ];
              if
                Xsb.Json.member "outcome" json
                |> Option.map (fun o -> Xsb.Json.as_string o = Some "timeout")
                |> Option.value ~default:false
              then incr timeouts)
        lines;
      check_bool "drained timeouts logged" true (!timeouts >= 1))

(* --- the METRICS op, the slow-query log, and the monotonic clock
   (ISSUE PR 8) --- *)

let read_lines path =
  In_channel.with_open_text path In_channel.input_all
  |> String.split_on_char '\n'
  |> List.filter (fun l -> String.trim l <> "")

let json_int field json =
  match Xsb.Json.member field json with
  | Some v -> ( match Xsb.Json.as_int v with Some n -> n | None -> Alcotest.failf "%s not an int" field)
  | None -> Alcotest.failf "missing %s" field

let metrics_cases =
  [
    t "METRICS: valid exposition; requests_total matches the access log" `Quick (fun () ->
        let log_path = Filename.temp_file "access" ".jsonl" in
        Fun.protect
          ~finally:(fun () -> Sys.remove log_path)
          (fun () ->
            let log_oc = open_out log_path in
            let cfg = { Server.default_config with access_log = Some log_oc } in
            let scrape = ref "" in
            with_server ~cfg (fun server ->
                with_client server (fun c ->
                    ignore (ok (Client.consult c tc_program));
                    check_int "tc" 5 (List.length (rows_of (Client.query c "path(1,X)")));
                    scrape := ok (Client.metrics c));
                ignore (Server.registry server));
            close_out log_oc;
            let samples =
              match Xsb.Metrics.Exposition.validate !scrape with
              | Ok samples -> samples
              | Error why -> Alcotest.failf "invalid exposition: %s" why
            in
            let find ?labels name =
              match Xsb.Metrics.Exposition.find ?labels samples name with
              | Some v -> v
              | None -> Alcotest.failf "series %s missing" name
            in
            (* rendered before its own request was logged: the scrape
               sees exactly the requests the access log had seen *)
            check_int "requests_total = pre-scrape log lines" 2
              (int_of_float (find "xsb_requests_total"));
            check_int "QUERY histogram counted it" 1
              (int_of_float
                 (find ~labels:[ ("op", "QUERY") ] "xsb_request_duration_seconds_count"));
            check_bool "per-table bytes exported" true
              (find ~labels:[ ("pred", "path/2") ] "xsb_table_bytes" > 0.0);
            check_bool "outcome counter" true
              (find ~labels:[ ("outcome", "ok") ] "xsb_requests_by_outcome_total" >= 2.0);
            check_bool "liveness gauges present" true
              (find "xsb_queue_depth" >= 0.0 && find "xsb_connections" >= 0.0);
            (* the access log now also holds the METRICS request itself *)
            check_int "log lines" 3 (List.length (read_lines log_path))));
    t "fake monotonic clock: deterministic wall_us, slow log, wall timestamps" `Quick (fun () ->
        let access_path = Filename.temp_file "access" ".jsonl" in
        let slow_path = Filename.temp_file "slow" ".jsonl" in
        let fake = ref 1000.0 in
        let saved = !Server.monotonic in
        Server.monotonic :=
          (fun () ->
            fake := !fake +. 1.0;
            !fake);
        Fun.protect
          ~finally:(fun () ->
            Server.monotonic := saved;
            Sys.remove access_path;
            Sys.remove slow_path)
          (fun () ->
            let access_oc = open_out access_path in
            let slow_oc = open_out slow_path in
            let cfg =
              {
                Server.default_config with
                workers = 1;
                access_log = Some access_oc;
                slow_ms = 500;
                slow_log = Some slow_oc;
              }
            in
            with_server ~cfg (fun server ->
                with_client server (fun c -> check_string "pong" "pong" (ok (Client.ping c))));
            close_out access_oc;
            close_out slow_oc;
            (* the handler reads the clock once (received), the worker
               twice (start, end): the measured wall is exactly one
               fake-clock step, NTP-immune by construction *)
            (match read_lines access_path with
            | [ line ] ->
                let json = Result.get_ok (Xsb.Json.of_string line) in
                check_int "wall_us is exactly one clock step" 1_000_000 (json_int "wall_us" json);
                (* timestamps still come from the wall clock, not the fake *)
                check_bool "ts_us is epoch-scale" true (json_int "ts_us" json > 1_000_000_000_000_000)
            | lines -> Alcotest.failf "expected 1 access-log line, got %d" (List.length lines));
            (* 1s >= 500ms: the ping lands in the slow-query log too,
               correlated by request id and carrying the stats delta *)
            match read_lines slow_path with
            | [ line ] ->
                let json = Result.get_ok (Xsb.Json.of_string line) in
                check_int "id" 1 (json_int "id" json);
                check_int "wall_us" 1_000_000 (json_int "wall_us" json);
                check_int "steps delta" 0 (json_int "steps" json);
                check_int "subgoals delta" 0 (json_int "subgoals" json);
                check_bool "op" true
                  (Xsb.Json.member "op" json
                  |> Option.map (fun o -> Xsb.Json.as_string o = Some "PING")
                  |> Option.value ~default:false)
            | lines -> Alcotest.failf "expected 1 slow-log line, got %d" (List.length lines)));
    t "no slow log below the threshold" `Quick (fun () ->
        let slow_path = Filename.temp_file "slow" ".jsonl" in
        Fun.protect
          ~finally:(fun () -> Sys.remove slow_path)
          (fun () ->
            let slow_oc = open_out slow_path in
            let cfg =
              { Server.default_config with slow_ms = 60_000; slow_log = Some slow_oc }
            in
            with_server ~cfg (fun server ->
                with_client server (fun c -> ignore (ok (Client.ping c))));
            close_out slow_oc;
            check_int "empty" 0 (List.length (read_lines slow_path))));
    t "retry: the elapsed budget caps attempts on the injected clock" `Quick (fun () ->
        let fake = ref 0.0 in
        let clock () =
          fake := !fake +. 1.0;
          !fake
        in
        let attempts = ref 0 in
        let r =
          Client.retry ~retries:10 ~backoff_ms:1.0 ~max_elapsed_ms:1_500.0 ~rand:(fun _ -> 0.0)
            ~sleep:(fun _ -> ()) ~clock ()
        in
        (match
           Client.with_retry r (fun () ->
               incr attempts;
               `Retry "down")
         with
        | Ok _ -> Alcotest.fail "cannot succeed"
        | Error e -> check_string "last failure" "down" e);
        (* started at t=1; after attempt 2 the clock reads 3.0 -> 2000ms
           elapsed >= 1500ms, so the 10-retry budget never gets used *)
        check_int "attempts" 2 !attempts;
        (* without the cap the same schedule runs all 11 attempts *)
        let attempts' = ref 0 in
        let r' =
          Client.retry ~retries:10 ~backoff_ms:1.0 ~max_elapsed_ms:0.0 ~rand:(fun _ -> 0.0)
            ~sleep:(fun _ -> ()) ~clock ()
        in
        (match
           Client.with_retry r' (fun () ->
               incr attempts';
               `Retry "down")
         with
        | Ok _ -> Alcotest.fail "cannot succeed"
        | Error _ -> ());
        check_int "attempts without cap" 11 !attempts');
    t "METRICS is idempotent (retryable); metrics off leaves zero counters" `Quick (fun () ->
        check_bool "idempotent" true (Client.idempotent Protocol.Metrics);
        let cfg = { Server.default_config with metrics_enabled = false } in
        with_server ~cfg (fun server ->
            with_client server (fun c ->
                ignore (ok (Client.ping c));
                let text = ok (Client.metrics_retry c) in
                match Xsb.Metrics.Exposition.validate text with
                | Error why -> Alcotest.failf "invalid exposition: %s" why
                | Ok samples ->
                    check_int "nothing recorded" 0
                      (int_of_float
                         (Option.value ~default:(-1.0)
                            (Xsb.Metrics.Exposition.find samples "xsb_requests_total"))));
            ignore server));
  ]

let suite =
  protocol_cases @ bounded_cases @ negative_cases @ server_cases @ metrics_cases
  @ [ isolation_case; backpressure_case; shutdown_case ]
