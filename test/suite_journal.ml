(* Crash-safe persistence (ISSUE PR 5): the journal record codec
   (round-trips, bit flips, truncation), recovery semantics (torn
   tails, mid-file corruption, stale generations, compaction), fault
   injection with a kill-and-recover property walking every I/O site,
   the remove_pred staleness regression, client retry backoff, and the
   durable server mode. *)

open Xsb_server
module J = Xsb.Journal
module F = Xsb.Failpoint

let t = Alcotest.test_case
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- scratch directories --- *)

let dir_counter = ref 0

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let with_dir f =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "xsb_journal_%d_%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* --- term helpers and a database fingerprint --- *)

let tm f args = Xsb.Term.Struct (f, Array.of_list args)
let i n = Xsb.Term.Int n
let clause_canon head body = Xsb.Canon.of_term (Xsb.Term.Struct (":-", [| head; body |]))

let fingerprint db =
  let clause_str (c : Xsb.Pred.clause) =
    Fmt.str "%a" Xsb.Canon.pp (clause_canon c.Xsb.Pred.head c.Xsb.Pred.body)
  in
  let pred_line p =
    Printf.sprintf "%s/%d %s tabled=%b mode=%s [%s]" (Xsb.Pred.name p) (Xsb.Pred.arity p)
      (match Xsb.Pred.kind p with Xsb.Pred.Dynamic -> "dynamic" | Xsb.Pred.Static -> "static")
      (Xsb.Pred.tabled p)
      (Xsb.Pred.table_mode_to_string (Xsb.Pred.table_mode p))
      (String.concat "; " (List.map clause_str (Xsb.Pred.clauses p)))
  in
  String.concat "\n"
    (List.sort compare (List.map pred_line (Xsb.Database.preds db))
    @ [ "hilog: " ^ String.concat "," (List.sort_uniq compare (Xsb.Database.hilog_symbols db)) ]
    @ [
        "modules: "
        ^ String.concat ","
            (List.sort_uniq compare
               (List.map
                  (fun (m : Xsb.Database.module_info) ->
                    Printf.sprintf "%s(%s)" m.Xsb.Database.module_name
                      (String.concat ";"
                         (List.map (fun (n, a) -> Printf.sprintf "%s/%d" n a) m.Xsb.Database.exports)))
                  (Xsb.Database.modules db)));
      ])

(* --- the record codec --- *)

let sample_mutations =
  [
    J.Add_clause
      {
        name = "edge";
        arity = 2;
        front = false;
        dynamic = true;
        clause = clause_canon (tm "edge" [ i 1; i 2 ]) (Xsb.Term.Atom "true");
      };
    J.Add_clause
      {
        name = "path";
        arity = 2;
        front = true;
        dynamic = false;
        clause =
          clause_canon
            (tm "path" [ Xsb.Term.fresh_var (); Xsb.Term.fresh_var () ])
            (tm "edge" [ Xsb.Term.fresh_var (); Xsb.Term.fresh_var () ]);
      };
    J.Retract_clause
      {
        name = "edge";
        arity = 2;
        clause = clause_canon (tm "edge" [ i 1; i 2 ]) (Xsb.Term.Atom "true");
      };
    J.Remove_pred { name = "p"; arity = 1 };
    J.Set_tabled { name = "path"; arity = 2 };
    J.Set_table_mode { name = "reach"; arity = 2; mode = Xsb.Pred.Incremental };
    J.Set_table_mode
      { name = "sp"; arity = 3; mode = Xsb.Pred.Subsumptive Xsb.Answer_store.Subsumption.Min };
    J.Set_table_mode
      { name = "n"; arity = 2; mode = Xsb.Pred.Subsumptive Xsb.Answer_store.Subsumption.Count };
    J.Set_dynamic { name = "q"; arity = 3 };
    J.Set_index
      { name = "edge"; arity = 2; spec = Xsb.Pred.Fields [ [ 1 ]; [ 2; 1 ] ]; size_hint = Some 64 };
    J.Set_index { name = "word"; arity = 2; spec = Xsb.Pred.First_string_index; size_hint = None };
    J.Set_index { name = "term"; arity = 1; spec = Xsb.Pred.Disc_tree_index; size_hint = None };
    J.Declare_hilog "h";
    J.Declare_module { module_name = "m"; exports = [ ("p", 1); ("q", 2) ] };
    J.Declare_op { priority = 700; fixity = "xfx"; op_name = "==>" };
    J.Load_image "\x00\x01\xffnot really an image";
  ]

let codec_cases =
  [
    t "every mutation variant round-trips through the codec" `Quick (fun () ->
        List.iter
          (fun m ->
            let m' = J.decode_mutation (J.encode_mutation m) in
            check_bool "round trip" true (m = m'))
          sample_mutations);
    t "a flipped bit anywhere in a frame never yields a record" `Quick (fun () ->
        List.iter
          (fun m ->
            let framed = J.frame_record m in
            for off = 0 to String.length framed - 1 do
              List.iter
                (fun bit ->
                  let b = Bytes.of_string framed in
                  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor bit));
                  match J.read_framed (Bytes.to_string b) 0 with
                  | J.Record _ -> Alcotest.failf "bit 0x%02x at offset %d decoded" bit off
                  | J.End_clean -> Alcotest.failf "bit 0x%02x at offset %d read as clean EOF" bit off
                  | J.End_torn | J.Corrupt _ -> ())
                [ 0x01; 0x80 ]
            done)
          [ List.nth sample_mutations 0; List.nth sample_mutations 11 ]);
    t "every truncation of a record stream is a clean prefix" `Quick (fun () ->
        let records = List.filteri (fun idx _ -> idx < 5) sample_mutations in
        let frames = List.map J.frame_record records in
        let buf = String.concat "" frames in
        (* offsets at which a whole number of records ends *)
        let boundaries =
          List.rev (List.fold_left (fun acc f -> (List.hd acc + String.length f) :: acc) [ 0 ] frames)
        in
        for cut = 0 to String.length buf do
          let b = String.sub buf 0 cut in
          let rec scan acc pos =
            match J.read_framed b pos with
            | J.Record (m, next) -> scan (m :: acc) next
            | J.End_clean -> (List.rev acc, `Clean)
            | J.End_torn -> (List.rev acc, `Torn)
            | J.Corrupt msg -> Alcotest.failf "cut at %d: corrupt: %s" cut msg
          in
          let got, status = scan [] 0 in
          let complete = List.length (List.filter (fun b -> b > 0 && b <= cut) boundaries) in
          check_int (Printf.sprintf "records at cut %d" cut) complete (List.length got);
          check_bool "prefix" true (got = List.filteri (fun idx _ -> idx < complete) records);
          check_bool "clean exactly at boundaries" (List.mem cut boundaries) (status = `Clean)
        done);
    t "decode_mutation rejects garbage with Corrupt_record" `Quick (fun () ->
        List.iter
          (fun s ->
            match J.decode_mutation s with
            | exception J.Corrupt_record _ -> ()
            | _ -> Alcotest.failf "decoded %S" s)
          [
            "";
            "\xff";
            "\x00";
            "\x63";
            J.encode_mutation (List.nth sample_mutations 0) ^ "x";
            "\x06\x00\x00\xff\xffhuge";
          ]);
    t "sync policy names parse" `Quick (fun () ->
        check_bool "never" true (J.sync_policy_of_string "never" = Some J.Never);
        check_bool "always" true (J.sync_policy_of_string "Always" = Some J.Always);
        check_bool "interval" true (J.sync_policy_of_string "interval" = Some (J.Interval 64));
        check_bool "interval=4" true (J.sync_policy_of_string "interval=4" = Some (J.Interval 4));
        check_bool "bare count" true (J.sync_policy_of_string "16" = Some (J.Interval 16));
        check_bool "junk" true (J.sync_policy_of_string "sometimes" = None);
        check_bool "zero" true (J.sync_policy_of_string "interval=0" = None))
  ]

(* --- journal lifecycle --- *)

(* a representative spread of mutations driven through the public
   Database API with the journal attached *)
let populate db =
  let edge = Xsb.Database.set_dynamic db "edge" 2 in
  ignore (Xsb.Database.insert_clause db edge ~head:(tm "edge" [ i 1; i 2 ]) ~body:(Xsb.Term.Atom "true"));
  ignore (Xsb.Database.insert_clause db edge ~head:(tm "edge" [ i 2; i 3 ]) ~body:(Xsb.Term.Atom "true"));
  ignore
    (Xsb.Database.insert_clause db ~front:true edge ~head:(tm "edge" [ i 0; i 1 ])
       ~body:(Xsb.Term.Atom "true"));
  (match Xsb.Pred.clauses edge with
  | c :: _ -> Xsb.Database.retract_clause db edge c
  | [] -> Alcotest.fail "no clause to retract");
  let doomed = Xsb.Database.set_dynamic db "doomed" 1 in
  ignore (Xsb.Database.insert_clause db doomed ~head:(tm "doomed" [ i 9 ]) ~body:(Xsb.Term.Atom "true"));
  Xsb.Database.remove_pred db "doomed" 1;
  Xsb.Database.set_tabled db "path" 2;
  Xsb.Database.set_index db "edge" 2 (Xsb.Pred.Fields [ [ 1 ] ]);
  Xsb.Database.add_op db 700 Xsb.Ops.XFX "==>";
  Xsb.Database.declare_hilog db "h";
  Xsb.Database.declare_module db "m" [ ("edge", 2) ]

let edge_count db =
  match Xsb.Database.find db "edge" 2 with
  | Some p -> Xsb.Pred.clause_count p
  | None -> 0

let assert_edge db a b =
  let edge = Xsb.Database.set_dynamic db "edge" 2 in
  ignore (Xsb.Database.insert_clause db edge ~head:(tm "edge" [ i a; i b ]) ~body:(Xsb.Term.Atom "true"))

let lifecycle_cases =
  [
    t "recovery replays to an identical database" `Quick (fun () ->
        with_dir (fun dir ->
            let db = Xsb.Database.create () in
            let j = J.open_ (J.default_config ~dir) db in
            J.attach j;
            populate db;
            J.close j;
            let db2 = Xsb.Database.create () in
            let j2 = J.open_ (J.default_config ~dir) db2 in
            check_string "identical state" (fingerprint db) (fingerprint db2);
            check_bool "records replayed" true ((J.stats j2).J.recovered_records > 0);
            check_bool "stats json has the generation" true
              (let s = Xsb.Json.to_string (J.stats_json j2) in
               String.length s > 0
               &&
               let re = "generation" in
               let rec find k =
                 k + String.length re <= String.length s
                 && (String.sub s k (String.length re) = re || find (k + 1))
               in
               find 0);
            J.close j2))
  ;
    t "sync=interval fsyncs every n records; sync=never only on demand" `Quick (fun () ->
        (* declare the predicate before attaching so each insert below
           is exactly one journal record *)
        let insert db pred a b =
          ignore
            (Xsb.Database.insert_clause db pred ~head:(tm "edge" [ i a; i b ])
               ~body:(Xsb.Term.Atom "true"))
        in
        with_dir (fun dir ->
            let db = Xsb.Database.create () in
            let edge = Xsb.Database.set_dynamic db "edge" 2 in
            let j = J.open_ { (J.default_config ~dir) with J.sync = J.Interval 3 } db in
            J.attach j;
            let d0 = J.durable_bytes j in
            insert db edge 1 2;
            insert db edge 2 3;
            check_int "not yet fsynced" d0 (J.durable_bytes j);
            check_bool "but written" true (J.written_bytes j > d0);
            insert db edge 3 4;
            check_int "third record syncs" (J.written_bytes j) (J.durable_bytes j);
            J.close j);
        with_dir (fun dir ->
            let db = Xsb.Database.create () in
            let edge = Xsb.Database.set_dynamic db "edge" 2 in
            let j = J.open_ { (J.default_config ~dir) with J.sync = J.Never } db in
            J.attach j;
            let d0 = J.durable_bytes j in
            insert db edge 1 2;
            insert db edge 2 3;
            check_int "never fsyncs on append" d0 (J.durable_bytes j);
            J.sync j;
            check_int "explicit sync" (J.written_bytes j) (J.durable_bytes j);
            J.close j));
    t "auto-compaction snapshots, rotates and preserves state" `Quick (fun () ->
        with_dir (fun dir ->
            let db = Xsb.Database.create () in
            let j = J.open_ { (J.default_config ~dir) with J.sync = J.Never; compact_bytes = 1500 } db in
            J.attach j;
            for k = 1 to 60 do
              assert_edge db k (k + 1)
            done;
            check_bool "compacted at least once" true ((J.stats j).J.compactions >= 1);
            check_bool "generation advanced" true (J.generation j >= 2L);
            check_bool "snapshot exists" true (Sys.file_exists (Filename.concat dir "snapshot.bin"));
            J.close j;
            let db2 = Xsb.Database.create () in
            let j2 = J.open_ { (J.default_config ~dir) with J.sync = J.Never; compact_bytes = 0 } db2 in
            check_string "identical after snapshot+tail replay" (fingerprint db) (fingerprint db2);
            J.close j2));
    t "a torn tail is dropped and the file truncated back" `Quick (fun () ->
        with_dir (fun dir ->
            let db = Xsb.Database.create () in
            let j = J.open_ (J.default_config ~dir) db in
            J.attach j;
            for k = 1 to 5 do
              assert_edge db k k
            done;
            J.close j;
            let jpath = Filename.concat dir "journal.log" in
            let size = (Unix.stat jpath).Unix.st_size in
            let fd = Unix.openfile jpath [ Unix.O_WRONLY ] 0o644 in
            Unix.ftruncate fd (size - 3);
            Unix.close fd;
            let db2 = Xsb.Database.create () in
            let j2 = J.open_ (J.default_config ~dir) db2 in
            check_int "last record dropped" 4 (edge_count db2);
            check_bool "torn bytes counted" true ((J.stats j2).J.torn_bytes_dropped > 0);
            check_bool "file truncated to the valid prefix" true
              ((Unix.stat jpath).Unix.st_size < size - 3);
            (* the recovered journal accepts new writes *)
            J.attach j2;
            assert_edge db2 5 5;
            J.close j2;
            let db3 = Xsb.Database.create () in
            let j3 = J.open_ (J.default_config ~dir) db3 in
            check_int "re-appended after recovery" 5 (edge_count db3);
            J.close j3));
    t "corruption before the tail raises a typed Recovery_error" `Quick (fun () ->
        with_dir (fun dir ->
            let db = Xsb.Database.create () in
            let j = J.open_ (J.default_config ~dir) db in
            J.attach j;
            for k = 1 to 5 do
              assert_edge db k k
            done;
            J.close j;
            let jpath = Filename.concat dir "journal.log" in
            let bytes =
              let ic = open_in_bin jpath in
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () -> Bytes.of_string (really_input_string ic (in_channel_length ic)))
            in
            (* flip a payload byte of the FIRST record: valid frames
               follow, so this cannot be a torn tail *)
            Bytes.set bytes 36 (Char.chr (Char.code (Bytes.get bytes 36) lxor 0x40));
            Out_channel.with_open_bin jpath (fun oc -> output_bytes oc bytes);
            (match J.open_ (J.default_config ~dir) (Xsb.Database.create ()) with
            | exception J.Recovery_error { records_ok; offset; _ } ->
                check_int "no record before the corruption" 0 records_ok;
                check_int "corruption located at the first record" J.header_len offset
            | j ->
                J.close j;
                Alcotest.fail "expected Recovery_error");
            (* the valid prefix (here: nothing) is still recoverable *)
            let db2 = Xsb.Database.create () in
            let j2 = J.open_ ~tolerate_corruption:true (J.default_config ~dir) db2 in
            check_int "salvaged prefix" 0 (edge_count db2);
            J.attach j2;
            assert_edge db2 1 1;
            J.close j2;
            let db3 = Xsb.Database.create () in
            let j3 = J.open_ (J.default_config ~dir) db3 in
            check_int "clean again after salvage" 1 (edge_count db3);
            J.close j3));
    t "a stale-generation journal is never replayed twice" `Quick (fun () ->
        with_dir (fun dir ->
            let db = Xsb.Database.create () in
            let j = J.open_ { (J.default_config ~dir) with J.sync = J.Always; compact_bytes = 0 } db in
            J.attach j;
            for k = 1 to 3 do
              assert_edge db k k
            done;
            (* keep the pre-compaction journal (generation 1, 3 records) *)
            let jpath = Filename.concat dir "journal.log" in
            let saved =
              let ic = open_in_bin jpath in
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            in
            J.compact j;
            J.close j;
            (* simulate a crash between the snapshot publish and the
               journal rotation: the old journal is back on disk, but
               the snapshot already contains its records *)
            Out_channel.with_open_bin jpath (fun oc -> output_string oc saved);
            let db2 = Xsb.Database.create () in
            let j2 = J.open_ (J.default_config ~dir) db2 in
            check_int "records not doubled" 3 (edge_count db2);
            check_bool "journal rotated past the snapshot" true (J.generation j2 >= 2L);
            J.close j2));
  ]

(* --- fault injection --- *)

let failpoint_cases =
  [
    t "an injected write failure poisons the journal (sticky Io_error)" `Quick (fun () ->
        F.reset ();
        with_dir (fun dir ->
            let db = Xsb.Database.create () in
            let j = J.open_ (J.default_config ~dir) db in
            J.attach j;
            assert_edge db 1 1;
            F.arm "journal.append.write" F.Fail;
            (match assert_edge db 2 2 with
            | exception J.Io_error { site; _ } -> check_string "site" "journal.append.write" site
            | () -> Alcotest.fail "expected Io_error");
            (* the failpoint is one-shot, but the poisoning is sticky *)
            (match assert_edge db 3 3 with
            | exception J.Io_error _ -> ()
            | () -> Alcotest.fail "expected sticky Io_error");
            check_bool "failed surfaced" true (J.failed j = Some "journal.append.write");
            (* the acknowledged prefix is intact on disk *)
            let db2 = Xsb.Database.create () in
            let j2 = J.open_ (J.default_config ~dir) db2 in
            check_int "acked prefix preserved" 1 (edge_count db2);
            J.close j2);
        F.reset ());
    t "a short write leaves a recoverable torn tail" `Quick (fun () ->
        F.reset ();
        with_dir (fun dir ->
            let db = Xsb.Database.create () in
            let j = J.open_ (J.default_config ~dir) db in
            J.attach j;
            assert_edge db 1 1;
            assert_edge db 2 2;
            F.arm "journal.append.write" (F.Short_write 5);
            (match assert_edge db 3 3 with
            | exception F.Injected_crash _ -> ()
            | () -> Alcotest.fail "expected Injected_crash");
            let db2 = Xsb.Database.create () in
            let j2 = J.open_ (J.default_config ~dir) db2 in
            check_int "torn record dropped" 2 (edge_count db2);
            check_int "five torn bytes" 5 (J.stats j2).J.torn_bytes_dropped;
            J.close j2);
        F.reset ());
  ]

(* --- the kill-and-recover property ---

   A scripted random mutation stream runs with the journal attached
   (sync=always, aggressive auto-compaction). Every named I/O site is
   then crashed at several of its hit points; after each crash the
   surviving bytes (only what was fsynced, unless a rotation already
   published more) are recovered into a fresh database, which must
   equal the database produced by the acknowledged mutation prefix —
   or prefix+1 for the one record that can be durable but unacked
   (a crash inside the compaction it triggered). *)

type wop =
  | WAssert of string * int * int * bool
  | WRetract of string * int * int
  | WRemove of string
  | WTable of string
  | WIndex of string
  | WHilog of string
  | WOp of string
  | WModule of string

let apply_wop db = function
  | WAssert (p, a, b, front) ->
      let pred = Xsb.Database.set_dynamic db p 2 in
      ignore
        (Xsb.Database.insert_clause db ~front pred ~head:(tm p [ i a; i b ])
           ~body:(Xsb.Term.Atom "true"))
  | WRetract (p, a, b) -> (
      match Xsb.Database.find db p 2 with
      | None -> ()
      | Some pred -> (
          let target = Xsb.Canon.of_term (tm p [ i a; i b ]) in
          match
            List.find_opt
              (fun (c : Xsb.Pred.clause) ->
                Xsb.Canon.equal (Xsb.Canon.of_term c.Xsb.Pred.head) target)
              (Xsb.Pred.clauses pred)
          with
          | Some c -> Xsb.Database.retract_clause db pred c
          | None -> ()))
  | WRemove p -> Xsb.Database.remove_pred db p 2
  | WTable p -> Xsb.Database.set_tabled db p 2
  | WIndex p -> Xsb.Database.set_index db p 2 (Xsb.Pred.Fields [ [ 1 ] ])
  | WHilog s -> Xsb.Database.declare_hilog db s
  | WOp name -> Xsb.Database.add_op db 700 Xsb.Ops.XFX name
  | WModule name -> Xsb.Database.declare_module db name [ ("edge", 2) ]

let gen_stream seed n =
  let st = Random.State.make [| seed |] in
  let pred () = List.nth [ "edge"; "link"; "arc" ] (Random.State.int st 3) in
  let small () = Random.State.int st 5 in
  List.init n (fun _ ->
      match Random.State.int st 100 with
      | x when x < 45 -> WAssert (pred (), small (), small (), Random.State.bool st)
      | x when x < 62 -> WRetract (pred (), small (), small ())
      | x when x < 70 -> WRemove (pred ())
      | x when x < 78 -> WTable (pred ())
      | x when x < 84 -> WIndex (pred ())
      | x when x < 90 -> WHilog (Printf.sprintf "h%d" (Random.State.int st 2))
      | x when x < 95 -> WOp (Printf.sprintf "op%d" (Random.State.int st 2))
      | _ -> WModule (Printf.sprintf "m%d" (Random.State.int st 2)))

let action_name = function
  | F.Fail -> "fail"
  | F.Crash -> "crash"
  | F.Short_write n -> Printf.sprintf "short-write(%d)" n

let crash_everywhere seed =
  let ops = gen_stream seed 40 in
  let n_ops = List.length ops in
  (* The journal's atomicity unit is the mutation record, and one
     workload op can emit several (e.g. Set_dynamic then Add_clause on
     a fresh predicate), so a crash may persist a durable prefix of the
     op in flight. Record the deterministic mutation stream and the
     per-op cumulative record counts to phrase the invariant exactly. *)
  let muts, cum =
    let db = Xsb.Database.create () in
    let acc = ref [] in
    Xsb.Database.on_mutation db (fun m -> acc := J.of_db_mutation m :: !acc);
    let cum = Array.make (n_ops + 1) 0 in
    List.iteri
      (fun idx op ->
        apply_wop db op;
        cum.(idx + 1) <- List.length !acc)
      ops;
    (Array.of_list (List.rev !acc), cum)
  in
  let expected_at m =
    let db = Xsb.Database.create () in
    for k = 0 to m - 1 do
      J.apply_mutation db muts.(k)
    done;
    fingerprint db
  in
  let cfg dir = { (J.default_config ~dir) with J.sync = J.Always; compact_bytes = 1500 } in
  (* clean run: everything acks, and we learn which sites the workload
     hits how often *)
  F.reset ();
  with_dir (fun dir ->
      let db = Xsb.Database.create () in
      let j = J.open_ (cfg dir) db in
      J.attach j;
      List.iter (apply_wop db) ops;
      J.close j;
      let db2 = Xsb.Database.create () in
      let j2 = J.open_ (cfg dir) db2 in
      check_string "clean run recovers fully" (fingerprint db) (fingerprint db2);
      J.close j2);
  let sites = F.all_hits () in
  F.reset ();
  check_bool "the workload exercises several I/O sites" true (List.length sites >= 4);
  let points hits = List.sort_uniq compare [ 0; hits / 3; 2 * hits / 3; hits - 1 ] in
  List.iter
    (fun (site, hits) ->
      List.iter
        (fun action ->
          List.iter
            (fun k ->
              with_dir (fun dir ->
                  F.reset ();
                  F.arm ~after:k site action;
                  let db = Xsb.Database.create () in
                  let j = J.open_ (cfg dir) db in
                  J.attach j;
                  let acked = ref 0 in
                  let crashed =
                    try
                      List.iter
                        (fun op ->
                          apply_wop db op;
                          incr acked)
                        ops;
                      J.close j;
                      false
                    with F.Injected_crash _ -> true
                  in
                  F.reset ();
                  (* model the page cache dying with the process: only
                     fsynced bytes survive — unless a rotation already
                     replaced the file with a shorter one *)
                  (if crashed then
                     let jpath = Filename.concat dir "journal.log" in
                     let durable = J.durable_bytes j in
                     let size = (Unix.stat jpath).Unix.st_size in
                     if durable < size then begin
                       let fd = Unix.openfile jpath [ Unix.O_WRONLY ] 0o644 in
                       Unix.ftruncate fd durable;
                       Unix.close fd
                     end);
                  (* recovery must succeed without tolerate_corruption *)
                  let db2 = Xsb.Database.create () in
                  let j2 = J.open_ (cfg dir) db2 in
                  let got = fingerprint db2 in
                  let a = !acked in
                  (* every record of the acked ops must survive; of the
                     op in flight, any durable record prefix may *)
                  let lo = cum.(a) and hi = cum.(min (a + 1) n_ops) in
                  let rec matches m = m <= hi && (got = expected_at m || matches (m + 1)) in
                  if not (matches lo) then
                    Alcotest.failf
                      "seed %d, %s at %s hit %d: recovered state is not an acked record prefix \
                       (acked %d of %d ops, records %d..%d)"
                      seed (action_name action) site k a n_ops lo hi;
                  (* and the store stays writable after recovery *)
                  J.attach j2;
                  apply_wop db2 (WAssert ("post", 9, 9, false));
                  J.close j2;
                  let db3 = Xsb.Database.create () in
                  let j3 = J.open_ (cfg dir) db3 in
                  check_bool "writable after recovery" true
                    (Xsb.Database.find db3 "post" 2 <> None);
                  J.close j3))
            (points hits))
        [ F.Crash; F.Short_write 5 ])
    sites;
  F.reset ()

let property_seeds =
  match Sys.getenv_opt "XSB_JOURNAL_SEED" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> [ n ]
      | None -> [ 11; 42 ])
  | None -> [ 11; 42 ]

let property_cases =
  List.map
    (fun seed ->
      t (Printf.sprintf "kill-and-recover at every I/O site (seed %d)" seed) `Quick (fun () ->
          crash_everywhere seed))
    property_seeds

(* --- the remove_pred regression ---

   Before this PR, removing a predicate left its completed tables, its
   table_all registration effects and its HiLog flag behind, so a
   re-declared predicate inherited stale state. *)

let remove_pred_cases =
  [
    t "re-created predicate does not see stale completed tables" `Quick (fun () ->
        let s = Xsb.Session.create () in
        Xsb.Session.consult s ":- table p/1.\np(1).\np(2).\n";
        let db = Xsb.Session.db s in
        let eng = Xsb.Session.engine s in
        let count () =
          let goal = Xsb.Parser.term_of_string ~ops:(Xsb.Database.ops db) "p(X)" in
          match Xsb.Engine.run_bounded eng goal with
          | `Answers sols -> List.length sols
          | `Truncated _ | `Timeout _ -> Alcotest.fail "unexpected bound"
        in
        check_int "two answers tabled" 2 (count ());
        Xsb.Database.remove_pred db "p" 1;
        let p = Xsb.Database.set_dynamic db "p" 1 in
        check_bool "fresh predicate is not tabled" false (Xsb.Pred.tabled p);
        ignore (Xsb.Database.insert_clause db p ~head:(tm "p" [ i 3 ]) ~body:(Xsb.Term.Atom "true"));
        (* a stale Complete table would still answer {1,2} here *)
        check_int "only the fresh clause answers" 1 (count ()));
    t "remove_pred clears the HiLog registration" `Quick (fun () ->
        let db = Xsb.Database.create () in
        Xsb.Database.declare_hilog db "h";
        ignore (Xsb.Database.add_clause db (tm "h" [ i 1 ]));
        (* hilog clauses live under the apply/2 encoding *)
        check_bool "encoded under apply/2" true (Xsb.Database.find db "apply" 2 <> None);
        Xsb.Database.remove_pred db "apply" 2;
        Xsb.Database.remove_pred db "h" 1;
        check_bool "registration dropped" false (Xsb.Database.is_hilog db "h");
        let pred, _ = Xsb.Database.add_clause db (tm "h" [ i 1 ]) in
        check_string "re-asserted clause is first-order again" "h" (Xsb.Pred.name pred));
  ]

(* --- client retry --- *)

let retry_cases =
  [
    t "with_retry backs off exponentially up to the cap" `Quick (fun () ->
        let sleeps = ref [] in
        let r =
          Client.retry ~retries:3 ~backoff_ms:100.0 ~max_backoff_ms:250.0 ~rand:(fun hi -> hi)
            ~sleep:(fun s -> sleeps := s :: !sleeps)
            ()
        in
        let attempts = ref 0 in
        let result =
          Client.with_retry r (fun () ->
              incr attempts;
              `Retry "still down")
        in
        check_bool "exhausted" true (result = Error "still down");
        check_int "initial + 3 retries" 4 !attempts;
        check_bool "100ms, 200ms, capped at 250ms" true
          (List.rev !sleeps = [ 100.0 /. 1000.0; 200.0 /. 1000.0; 250.0 /. 1000.0 ]));
    t "with_retry stops at the first success" `Quick (fun () ->
        let attempts = ref 0 in
        let r = Client.retry ~retries:5 ~backoff_ms:1.0 ~rand:(fun hi -> hi) ~sleep:(fun _ -> ()) () in
        let result =
          Client.with_retry r (fun () ->
              incr attempts;
              if !attempts < 3 then `Retry "again" else `Ok !attempts)
        in
        check_bool "succeeded on the third attempt" true (result = Ok 3));
    t "zero retries means exactly one attempt and no sleep" `Quick (fun () ->
        let slept = ref false in
        let r = Client.retry ~retries:0 ~sleep:(fun _ -> slept := true) () in
        let attempts = ref 0 in
        let result =
          Client.with_retry r (fun () ->
              incr attempts;
              `Retry "no")
        in
        check_bool "failed" true (result = Error "no");
        check_int "one attempt" 1 !attempts;
        check_bool "no sleep" false !slept);
    t "only idempotent ops are retryable" `Quick (fun () ->
        check_bool "ping" true (Client.idempotent Protocol.Ping);
        check_bool "query" true (Client.idempotent Protocol.Query);
        check_bool "statistics" true (Client.idempotent Protocol.Statistics);
        check_bool "assert" false (Client.idempotent Protocol.Assert);
        check_bool "consult" false (Client.idempotent Protocol.Consult);
        check_bool "abolish" false (Client.idempotent Protocol.Abolish);
        check_bool "sync" false (Client.idempotent Protocol.Sync));
    t "connect_with_retry retries ECONNREFUSED with backoff" `Quick (fun () ->
        (* grab a port nothing listens on *)
        let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
        let port =
          match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> assert false
        in
        Unix.close fd;
        let sleeps = ref [] in
        let r =
          Client.retry ~retries:2 ~backoff_ms:1.0 ~rand:(fun hi -> hi)
            ~sleep:(fun s -> sleeps := s :: !sleeps)
            ()
        in
        match Client.connect_with_retry ~retry:r ~host:"127.0.0.1" port with
        | Error _ -> check_int "two backoff sleeps" 2 (List.length !sleeps)
        | Ok c ->
            Client.close c;
            Alcotest.fail "unexpected connect");
  ]

(* --- the durable server --- *)

let with_server ?(cfg = Server.default_config) f =
  let server = Server.start { cfg with Server.port = 0 } in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f server)

let with_client server f =
  let c = Client.connect (Server.port server) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let ok = function
  | Ok payload -> payload
  | Error { Client.code; message } ->
      Alcotest.failf "unexpected error %s: %s" (Protocol.err_code_name code) message

let rows_of = function
  | Client.Rows { rows; _ } -> rows
  | Client.Query_timeout _ -> Alcotest.fail "unexpected timeout"
  | Client.Query_error { code; message } ->
      Alcotest.failf "unexpected query error %s: %s" (Protocol.err_code_name code) message

let durable_cfg dir =
  {
    Server.default_config with
    Server.data_dir = Some dir;
    Server.sync = J.Always;
    Server.compact_bytes = 0;
  }

let server_cases =
  [
    t "durable server: asserted state survives a restart" `Quick (fun () ->
        with_dir (fun dir ->
            with_server ~cfg:(durable_cfg dir) (fun server ->
                with_client server (fun c ->
                    ignore (ok (Client.assert_ c "edge(1,2)"));
                    ignore (ok (Client.assert_ c "edge(2,3)"));
                    ignore (ok (Client.assert_ c "path(X,Y) :- edge(X,Y)"));
                    check_bool "sync reports durable bytes" true
                      (String.length (ok (Client.sync c)) > 0)));
            with_server ~cfg:(durable_cfg dir) (fun server ->
                with_client server (fun c ->
                    check_int "facts recovered" 2
                      (List.length (rows_of (Client.query c "edge(X,Y)")));
                    check_int "rules recovered" 2
                      (List.length (rows_of (Client.query c "path(X,Y)")))))));
    t "durable server: one shared session across connections" `Quick (fun () ->
        with_dir (fun dir ->
            with_server ~cfg:(durable_cfg dir) (fun server ->
                with_client server (fun c -> ignore (ok (Client.assert_ c "shared(1)")));
                with_client server (fun c ->
                    check_int "visible on a second connection" 1
                      (List.length (rows_of (Client.query c "shared(X)")))))));
    t "SYNC without --data-dir is BAD_REQUEST" `Quick (fun () ->
        with_server (fun server ->
            with_client server (fun c ->
                match Client.sync c with
                | Error { Client.code = Protocol.Bad_request; _ } -> ()
                | Error { Client.code; _ } ->
                    Alcotest.failf "wrong code %s" (Protocol.err_code_name code)
                | Ok _ -> Alcotest.fail "expected BAD_REQUEST")));
    t "ABOLISH name/arity removes the predicate durably" `Quick (fun () ->
        with_dir (fun dir ->
            with_server ~cfg:(durable_cfg dir) (fun server ->
                with_client server (fun c ->
                    ignore (ok (Client.assert_ c "junk(1)"));
                    ignore (ok (Client.assert_ c "junk(2)"));
                    check_string "removed" "removed" (ok (Client.abolish ~pred:"junk/1" c));
                    ignore (ok (Client.assert_ c "junk(7)"));
                    check_int "only the fresh clause" 1
                      (List.length (rows_of (Client.query c "junk(X)")));
                    match Client.abolish ~pred:"not an indicator" c with
                    | Error { Client.code = Protocol.Bad_request; _ } -> ()
                    | _ -> Alcotest.fail "expected BAD_REQUEST"));
            with_server ~cfg:(durable_cfg dir) (fun server ->
                with_client server (fun c ->
                    check_int "removal recovered too" 1
                      (List.length (rows_of (Client.query c "junk(X)")))))));
    t "a journal write failure degrades the server to read-only" `Quick (fun () ->
        F.reset ();
        with_dir (fun dir ->
            with_server ~cfg:(durable_cfg dir) (fun server ->
                with_client server (fun c ->
                    ignore (ok (Client.assert_ c "edge(1,2)"));
                    F.arm "journal.append.write" F.Fail;
                    (match Client.assert_ c "edge(2,3)" with
                    | Error { Client.code = Protocol.Readonly; _ } -> ()
                    | Error { Client.code; _ } ->
                        Alcotest.failf "wrong code %s" (Protocol.err_code_name code)
                    | Ok _ -> Alcotest.fail "expected READONLY");
                    check_bool "server flagged read-only" true (Server.read_only server <> None);
                    (* mutations keep being refused, reads keep working *)
                    (match Client.assert_ c "edge(3,4)" with
                    | Error { Client.code = Protocol.Readonly; _ } -> ()
                    | _ -> Alcotest.fail "expected READONLY again");
                    check_bool "queries still served" true
                      (List.length (rows_of (Client.query c "edge(X,Y)")) >= 1);
                    match Client.sync c with
                    | Error { Client.code = Protocol.Readonly; _ } -> ()
                    | _ -> Alcotest.fail "SYNC should be refused read-only"));
            F.reset ();
            (* after a restart the acked prefix is intact and writable *)
            with_server ~cfg:(durable_cfg dir) (fun server ->
                with_client server (fun c ->
                    check_int "acked prefix recovered" 1
                      (List.length (rows_of (Client.query c "edge(X,Y)")));
                    ignore (ok (Client.assert_ c "edge(9,9)")))));
        F.reset ());
  ]

(* --- incremental tables on the durable server --- *)

(* one counter out of the STATS text, e.g. [stat text "subgoals"] *)
let stat_of text name =
  let target = name ^ ": " in
  let tlen = String.length target in
  List.fold_left
    (fun acc line ->
      match acc with
      | Some _ -> acc
      | None ->
          let line = String.trim line in
          if String.length line > tlen && String.sub line 0 tlen = target then
            int_of_string_opt (String.sub line tlen (String.length line - tlen))
          else None)
    None
    (String.split_on_char '\n' text)

let stat c name =
  match stat_of (ok (Client.statistics c)) name with
  | Some n -> n
  | None -> Alcotest.failf "no %S line in STATS" name

let reach_src =
  ":- table reach/2 as incremental.\n\
   reach(X,Y) :- edge(X,Y).\n\
   reach(X,Z) :- reach(X,Y), edge(Y,Z)."

let incremental_server_cases =
  [
    t "durable server: tables stay warm across unrelated writes" `Quick (fun () ->
        with_dir (fun dir ->
            with_server ~cfg:(durable_cfg dir) (fun server ->
                with_client server (fun c ->
                    ignore (ok (Client.consult c reach_src));
                    ignore (ok (Client.assert_ c "edge(1,2)"));
                    ignore (ok (Client.assert_ c "edge(2,3)"));
                    check_int "cold query" 2 (List.length (rows_of (Client.query c "reach(1,X)")));
                    let before = stat c "subgoals" in
                    (* a journaled write to an unrelated predicate must
                       not disturb the completed reach tables *)
                    ignore (ok (Client.assert_ c "noise(1)"));
                    check_int "warm query" 2 (List.length (rows_of (Client.query c "reach(1,X)")));
                    check_int "only the private query table was created" (before + 1)
                      (stat c "subgoals");
                    check_int "no repair needed" 0 (stat c "repairs");
                    (* a write the table depends on is repaired in
                       place, not recomputed *)
                    ignore (ok (Client.assert_ c "edge(3,4)"));
                    check_int "repaired answers" 3
                      (List.length (rows_of (Client.query c "reach(1,X)")));
                    check_int "one repair" 1 (stat c "repairs")))));
    t "durable server: table modes survive a restart" `Quick (fun () ->
        with_dir (fun dir ->
            with_server ~cfg:(durable_cfg dir) (fun server ->
                with_client server (fun c ->
                    ignore
                      (ok
                         (Client.consult c
                            ":- table sp/3 as subsumptive(min).\n\
                             sp(X,Y,C) :- edge(X,Y,C).\n\
                             sp(X,Z,C) :- sp(X,Y,C1), edge(Y,Z,C2), C is C1 + C2."));
                    ignore (ok (Client.assert_ c "edge(a,b,3)"));
                    ignore (ok (Client.assert_ c "edge(a,b,1)"))));
            (* compact_bytes = 0 forces snapshot compaction, so recovery
               replays Load_image + Set_table_mode records *)
            with_server ~cfg:(durable_cfg dir) (fun server ->
                with_client server (fun c ->
                    check_int "still folded to the minimum" 1
                      (List.length (rows_of (Client.query c "sp(a,Y,C)")))))));
  ]

(* --- group commit ---

   Concurrent appenders block on a commit barrier while a dedicated
   committer thread issues one fsync per batch; the durability contract
   on return from [append] is the same as [Always]. *)

let group_cfg dir =
  { (J.default_config ~dir) with J.sync = J.Group { window_us = 200; max_batch = 64 } }

let edge_mut k =
  J.Add_clause
    {
      name = "edge";
      arity = 2;
      front = false;
      dynamic = true;
      clause = clause_canon (tm "edge" [ i k; i k ]) (Xsb.Term.Atom "true");
    }

let edge_ids db =
  match Xsb.Database.find db "edge" 2 with
  | None -> []
  | Some pred ->
      List.filter_map
        (fun (c : Xsb.Pred.clause) ->
          match Xsb.Term.deref c.Xsb.Pred.head with
          | Xsb.Term.Struct ("edge", [| a; _ |]) -> (
              match Xsb.Term.deref a with Xsb.Term.Int n -> Some n | _ -> None)
          | _ -> None)
        (Xsb.Pred.clauses pred)

let group_cases =
  [
    t "group commit: concurrent appenders are all durable on return" `Quick (fun () ->
        with_dir (fun dir ->
            let db = Xsb.Database.create () in
            let j = J.open_ (group_cfg dir) db in
            let writers = 8 and per = 8 in
            let threads =
              List.init writers (fun w ->
                  Thread.create
                    (fun () ->
                      for r = 0 to per - 1 do
                        J.append j (edge_mut ((w * per) + r))
                      done)
                    ())
            in
            List.iter Thread.join threads;
            (* every append returned, so every record must be fsynced *)
            check_int "durable == written" (J.written_bytes j) (J.durable_bytes j);
            check_bool "the committer issued batches" true ((J.stats j).J.group_batches >= 1);
            J.close j;
            let db2 = Xsb.Database.create () in
            let j2 = J.open_ (group_cfg dir) db2 in
            check_int "every record recovered" (writers * per) (edge_count db2);
            J.close j2));
    t "append_batch: one fsync commits the whole transaction" `Quick (fun () ->
        with_dir (fun dir ->
            let db = Xsb.Database.create () in
            let j = J.open_ (group_cfg dir) db in
            let before = (J.stats j).J.fsyncs in
            J.append_batch j (List.init 10 edge_mut);
            (* the batch lands in one write, so the committer covers it
               with exactly one fsync — the amortization group commit
               sells *)
            check_int "one fsync for ten records" (before + 1) (J.stats j).J.fsyncs;
            check_int "durable on return" (J.written_bytes j) (J.durable_bytes j);
            J.close j;
            let db2 = Xsb.Database.create () in
            let j2 = J.open_ (group_cfg dir) db2 in
            check_int "all ten recovered" 10 (edge_count db2);
            J.close j2));
    t "deferred group hook: enqueue is durable only after the barrier" `Quick (fun () ->
        with_dir (fun dir ->
            let db = Xsb.Database.create () in
            let j = J.open_ (group_cfg dir) db in
            J.attach ~deferred:true j;
            assert_edge db 1 1;
            assert_edge db 2 2;
            J.barrier j;
            check_int "durable after the barrier" (J.written_bytes j) (J.durable_bytes j);
            J.close j;
            let db2 = Xsb.Database.create () in
            let j2 = J.open_ (group_cfg dir) db2 in
            check_int "both recovered" 2 (edge_count db2);
            J.close j2));
  ]

(* --- the group-commit kill-and-recover property ---

   Concurrent writers append under group commit while every I/O site
   the workload hits is crashed at several of its hit points. A crash
   between the batch write and the batch fsync (or anywhere else) must
   never lose a record whose append acknowledged — and must never
   resurrect a record nobody wrote. Durable-but-unacked records (the
   crash fell between fsync and the ack broadcast) are allowed: the
   contract is acked ⊆ recovered ⊆ attempted. *)

let group_crash_everywhere seed =
  let st = Random.State.make [| seed |] in
  let writers = 4 and per = 4 + Random.State.int st 4 in
  let cfg dir =
    {
      (J.default_config ~dir) with
      J.sync =
        J.Group
          {
            window_us = 50 + Random.State.int st 300;
            max_batch = 1 + Random.State.int st 8;
          };
      compact_bytes = 900;
    }
  in
  (* the server's write path: mutate the database under a lock (the
     deferred hook only enqueues), then block on the commit barrier
     outside it — so batches form across writers *)
  let run_writers db j acked =
    let dbm = Mutex.create () in
    let threads =
      List.init writers (fun w ->
          Thread.create
            (fun () ->
              try
                for r = 0 to per - 1 do
                  let id = (w * per) + r in
                  Mutex.lock dbm;
                  (match assert_edge db id id with
                  | () -> Mutex.unlock dbm
                  | exception e ->
                      Mutex.unlock dbm;
                      raise e);
                  J.barrier j;
                  acked.(id) <- true
                done
              with F.Injected_crash _ | J.Io_error _ -> ())
            ())
    in
    List.iter Thread.join threads
  in
  (* clean run: learn which I/O sites this workload hits *)
  F.reset ();
  with_dir (fun dir ->
      let db = Xsb.Database.create () in
      let j = J.open_ (cfg dir) db in
      J.attach ~deferred:true j;
      run_writers db j (Array.make (writers * per) false);
      J.close j);
  let sites = F.all_hits () in
  F.reset ();
  check_bool "the workload exercises several I/O sites" true (List.length sites >= 3);
  let points hits = List.sort_uniq compare [ 0; hits / 2; hits - 1 ] in
  List.iter
    (fun (site, hits) ->
      List.iter
        (fun action ->
          List.iter
            (fun k ->
              with_dir (fun dir ->
                  F.reset ();
                  F.arm ~after:k site action;
                  let db = Xsb.Database.create () in
                  let j = J.open_ (cfg dir) db in
                  J.attach ~deferred:true j;
                  let acked = Array.make (writers * per) false in
                  run_writers db j acked;
                  F.reset ();
                  let durable = J.durable_bytes j in
                  (try J.close j with _ -> ());
                  (* model the page cache dying with the process: only
                     fsynced bytes survive — unless a rotation already
                     replaced the file with a shorter one *)
                  let jpath = Filename.concat dir "journal.log" in
                  (match Unix.stat jpath with
                  | { Unix.st_size; _ } when durable < st_size ->
                      let fd = Unix.openfile jpath [ Unix.O_WRONLY ] 0o644 in
                      Unix.ftruncate fd durable;
                      Unix.close fd
                  | _ -> ()
                  | exception Unix.Unix_error _ -> ());
                  let db2 = Xsb.Database.create () in
                  let j2 = J.open_ (cfg dir) db2 in
                  J.close j2;
                  let recovered = edge_ids db2 in
                  Array.iteri
                    (fun id was_acked ->
                      if was_acked && not (List.mem id recovered) then
                        Alcotest.failf "seed %d, %s at %s hit %d: acked record %d lost" seed
                          (action_name action) site k id)
                    acked;
                  List.iter
                    (fun id ->
                      if id < 0 || id >= writers * per then
                        Alcotest.failf "seed %d, %s at %s hit %d: phantom record %d" seed
                          (action_name action) site k id)
                    recovered))
            (points hits))
        [ F.Crash; F.Short_write 5 ])
    sites;
  F.reset ()

let group_property_cases =
  List.map
    (fun seed ->
      t
        (Printf.sprintf "group commit never loses an acked record (seed %d)" seed)
        `Quick
        (fun () -> group_crash_everywhere seed))
    property_seeds

(* --- archived generations and point-in-time recovery --- *)

let archive_cases =
  [
    t "keep_generations archives rotations and prunes beyond the window" `Quick (fun () ->
        with_dir (fun dir ->
            let cfg =
              { (J.default_config ~dir) with J.compact_bytes = 0; keep_generations = 2 }
            in
            let db = Xsb.Database.create () in
            let j = J.open_ cfg db in
            J.attach j;
            assert_edge db 1 1;
            J.compact j;
            assert_edge db 2 2;
            J.compact j;
            assert_edge db 3 3;
            J.compact j;
            check_bool "generation advanced" true (J.generation j >= 4L);
            check_bool "gen 3 journal archived" true
              (Sys.file_exists (J.archive_journal_path cfg 3L));
            check_bool "gen 2 journal archived" true
              (Sys.file_exists (J.archive_journal_path cfg 2L));
            check_bool "gen 1 pruned (window is 2)" false
              (Sys.file_exists (J.archive_journal_path cfg 1L));
            J.close j));
    t "recover_at rebuilds an intermediate generation's state" `Quick (fun () ->
        with_dir (fun dir ->
            let cfg =
              { (J.default_config ~dir) with J.compact_bytes = 0; keep_generations = 8 }
            in
            let db = Xsb.Database.create () in
            let j = J.open_ cfg db in
            J.attach j;
            assert_edge db 1 1;
            assert_edge db 2 2;
            J.compact j;
            assert_edge db 3 3;
            assert_edge db 4 4;
            J.compact j;
            assert_edge db 5 5;
            J.close j;
            (* generation 2 = snapshot of gen 1 (edges 1,2) + its records *)
            let db2 = Xsb.Database.create () in
            let n = J.recover_at ~dir ~generation:2L db2 in
            check_int "state as of the end of generation 2" 4 (edge_count db2);
            (* ~upto rewinds within the generation *)
            let db3 = Xsb.Database.create () in
            ignore (J.recover_at ~upto:(n - 1) ~dir ~generation:2L db3);
            check_int "one record earlier" 3 (edge_count db3);
            (* the live (never-rotated) generation is reachable too *)
            let db4 = Xsb.Database.create () in
            ignore (J.recover_at ~dir ~generation:3L db4);
            check_int "live generation" 5 (edge_count db4);
            (* a pruned generation is a typed error, not garbage *)
            match J.recover_at ~dir ~generation:9L (Xsb.Database.create ()) with
            | exception J.Recovery_error _ -> ()
            | _ -> Alcotest.fail "expected Recovery_error for a missing generation"));
  ]

(* --- failover fencing epochs (DESIGN.md §14) --- *)

let epoch_cases =
  [
    t "epoch: stamped at 1, bumped at promotion, durable across restart" `Quick (fun () ->
        with_dir (fun dir ->
            let db = Xsb.Database.create () in
            let j = J.open_ (J.default_config ~dir) db in
            J.attach j;
            Alcotest.(check int64) "fresh journals start at epoch 1" 1L (J.epoch j);
            assert_edge db 1 1;
            assert_edge db 2 2;
            Alcotest.(check int64) "bump returns the new epoch" 2L (J.bump_epoch j);
            Alcotest.(check int64) "live epoch moved" 2L (J.epoch j);
            (* the retired epoch's fence is where its authority ended:
               exactly the synced position at the bump *)
            (match J.epoch_fence j 1L with
            | Some (gen, off) ->
                let dgen, doff = J.durable_position j in
                Alcotest.(check int64) "fence generation" dgen gen;
                check_int "fence offset" doff off
            | None -> Alcotest.fail "no fence recorded for the retired epoch");
            check_bool "no fence for a live epoch" true (J.epoch_fence j 2L = None);
            (* records appended under the new epoch replay fine, and the
               epoch survives a close/reopen *)
            assert_edge db 3 3;
            J.close j;
            let db2 = Xsb.Database.create () in
            let j2 = J.open_ (J.default_config ~dir) db2 in
            Alcotest.(check int64) "epoch durable across restart" 2L (J.epoch j2);
            check_int "records across the bump all replayed" 3 (edge_count db2);
            (match J.epoch_fence j2 1L with
            | Some _ -> ()
            | None -> Alcotest.fail "fence lost across restart");
            (* the epoch survives a compaction (snapshot + new live
               journal) too *)
            J.attach j2;
            J.compact j2;
            J.close j2;
            let db3 = Xsb.Database.create () in
            let j3 = J.open_ (J.default_config ~dir) db3 in
            Alcotest.(check int64) "epoch survives compaction" 2L (J.epoch j3);
            check_int "state intact after compaction" 3 (edge_count db3);
            J.close j3));
  ]

let suite =
  codec_cases @ lifecycle_cases @ failpoint_cases @ property_cases @ group_cases
  @ group_property_cases @ archive_cases @ remove_pred_cases @ retry_cases @ server_cases
  @ incremental_server_cases @ epoch_cases
