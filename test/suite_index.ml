open Xsb

let t = Alcotest.test_case
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_ints = Alcotest.(check (list int))

let args_of s =
  match Term.deref (Parser.term_of_string s) with
  | Term.Struct (_, args) -> args
  | _ -> [||]

let cases =
  [
    t "arg_hash single field" `Quick (fun () ->
        let idx = Arg_hash.create [ 1 ] in
        Arg_hash.insert idx 0 (args_of "p(a,1)");
        Arg_hash.insert idx 1 (args_of "p(b,2)");
        Arg_hash.insert idx 2 (args_of "p(a,3)");
        check_ints "a bucket" [ 0; 2 ] (Option.get (Arg_hash.lookup idx (args_of "p(a,X)")));
        check_ints "b bucket" [ 1 ] (Option.get (Arg_hash.lookup idx (args_of "p(b,X)")));
        check_ints "missing" [] (Option.get (Arg_hash.lookup idx (args_of "p(c,X)")));
        check_bool "unbound arg unusable" true (Arg_hash.lookup idx (args_of "p(X,1)") = None));
    t "arg_hash multi-field combo" `Quick (fun () ->
        let idx = Arg_hash.create [ 1; 3 ] in
        Arg_hash.insert idx 0 (args_of "p(a,x,1)");
        Arg_hash.insert idx 1 (args_of "p(a,y,2)");
        Arg_hash.insert idx 2 (args_of "p(a,z,1)");
        check_ints "combo" [ 0; 2 ] (Option.get (Arg_hash.lookup idx (args_of "p(a,W,1)")));
        check_bool "partial unusable" true (Arg_hash.lookup idx (args_of "p(a,W,Z)") = None));
    t "arg_hash catch-all for variable heads" `Quick (fun () ->
        let idx = Arg_hash.create [ 1 ] in
        Arg_hash.insert idx 0 (args_of "p(a)");
        Arg_hash.insert idx 1 [| Term.fresh_var () |];
        Arg_hash.insert idx 2 (args_of "p(b)");
        check_ints "a + catchall" [ 0; 1 ] (Option.get (Arg_hash.lookup idx (args_of "p(a)")));
        check_ints "c only catchall" [ 1 ] (Option.get (Arg_hash.lookup idx (args_of "p(c)"))));
    t "arg_hash outer symbol only" `Quick (fun () ->
        (* hash indexing discriminates the outer functor only (§4.5) *)
        let idx = Arg_hash.create [ 1 ] in
        Arg_hash.insert idx 0 (args_of "p(f(a))");
        Arg_hash.insert idx 1 (args_of "p(f(b))");
        check_ints "same outer symbol" [ 0; 1 ]
          (Option.get (Arg_hash.lookup idx (args_of "p(f(a))"))));
    t "arg_hash remove" `Quick (fun () ->
        let idx = Arg_hash.create [ 1 ] in
        Arg_hash.insert idx 0 (args_of "p(a)");
        Arg_hash.insert idx 1 (args_of "p(a)");
        Arg_hash.remove idx 0 (args_of "p(a)");
        check_ints "removed" [ 1 ] (Option.get (Arg_hash.lookup idx (args_of "p(a)"))));
    t "arg_hash order preserved with asserta ids" `Quick (fun () ->
        let idx = Arg_hash.create [ 1 ] in
        Arg_hash.insert idx 0 (args_of "p(a)");
        Arg_hash.insert idx (-1) (args_of "p(a)");
        Arg_hash.insert idx 1 (args_of "p(a)");
        check_ints "sorted" [ -1; 0; 1 ] (Option.get (Arg_hash.lookup idx (args_of "p(a)"))));
    t "first_string: Example 4.2 strings" `Quick (fun () ->
        (* p(g(a),f(X)) => g/1 a f/1 ; p(g(X),Y) => g/1 *)
        check_int "p(g(a),f(X))" 3
          (List.length (First_string.string_of_head (args_of "p(g(a),f(X))")));
        check_int "p(g(a),f(a))" 4
          (List.length (First_string.string_of_head (args_of "p(g(a),f(a))")));
        check_int "p(g(X),Y)" 1 (List.length (First_string.string_of_head (args_of "p(g(X),Y)"))));
    t "first_string: Example 4.2 trie retrieval" `Quick (fun () ->
        let trie = First_string.create () in
        (* the four clauses of Example 4.2, in order *)
        First_string.insert trie 0 (args_of "p(g(a),f(X))");
        First_string.insert trie 1 (args_of "p(g(a),f(a))");
        First_string.insert trie 2 (args_of "p(g(b),f(1))");
        First_string.insert trie 3 (args_of "p(g(X),Y)");
        (* fully bound call: clauses 0 (prefix), 1 (exact), 3 (general) *)
        check_ints "p(g(a),f(a))" [ 0; 1; 3 ] (First_string.lookup trie (args_of "p(g(a),f(a))"));
        check_ints "p(g(b),f(1))" [ 2; 3 ] (First_string.lookup trie (args_of "p(g(b),f(1))"));
        (* call with variable second arg: subtree under g,a *)
        check_ints "p(g(a),Y)" [ 0; 1; 3 ] (First_string.lookup trie (args_of "p(g(a),Y)"));
        (* open call: everything *)
        check_ints "p(X,Y)" [ 0; 1; 2; 3 ] (First_string.lookup trie (args_of "p(X,Y)"));
        (* no match beyond the general clause *)
        check_ints "p(g(c),f(a))" [ 3 ] (First_string.lookup trie (args_of "p(g(c),f(a))")));
    t "first_string discriminates below the first variable" `Quick (fun () ->
        let trie = First_string.create () in
        First_string.insert trie 0 (args_of "p(g(a),f(X))");
        First_string.insert trie 1 (args_of "p(g(a),f(a))");
        (* clause 1 ends in a deeper symbol 'a' that cannot match f(b),
           and the trie prunes it; clause 0 (string ends at its variable)
           remains a candidate *)
        check_ints "prunes deeper mismatch" [ 0 ]
          (First_string.lookup trie (args_of "p(g(a),f(b))")));
    t "answer store insertion order and dups" `Quick (fun () ->
        let store = Answer_store.create () in
        let c s = Canon.of_term (Parser.term_of_string s) in
        check_bool "new" true (Answer_store.insert store (c "p(1)"));
        check_bool "new" true (Answer_store.insert store (c "p(2)"));
        check_bool "dup" false (Answer_store.insert store (c "p(1)"));
        check_bool "variant dup" false
          (Answer_store.insert store (Canon.of_term (Parser.term_of_string "p(1)")));
        check_int "size" 2 (Answer_store.size store);
        check_bool "order" true (Canon.equal (Answer_store.get store 0) (c "p(1)")));
    t "answer store variant semantics with variables" `Quick (fun () ->
        let store = Answer_store.create () in
        let c s = Canon.of_term (Parser.term_of_string s) in
        check_bool "p(X,Y) new" true (Answer_store.insert store (c "p(X,Y)"));
        check_bool "p(A,B) variant dup" false (Answer_store.insert store (c "p(A,B)"));
        check_bool "p(A,A) distinct" true (Answer_store.insert store (c "p(A,A)")));
    t "trie answer store agrees with hash store" `Quick (fun () ->
        let hash = Answer_store.Hash.create () in
        let trie = Answer_store.Trie.create () in
        let inputs =
          [ "p(1,2)"; "p(X,Y)"; "p(X,X)"; "p(1,2)"; "p(f(X),[1,2])"; "p(f(Y),[1,2])"; "p(a,b)" ]
        in
        List.iter
          (fun s ->
            let c = Canon.of_term (Parser.term_of_string s) in
            check_bool ("agree on " ^ s) (Answer_store.Hash.insert hash c)
              (Answer_store.Trie.insert trie c))
          inputs;
        check_int "same size" (Answer_store.Hash.size hash) (Answer_store.Trie.size trie);
        List.iteri
          (fun i c -> check_bool "same order" true (Canon.equal c (Answer_store.Trie.get trie i)))
          (Answer_store.Hash.to_list hash));
  ]

let props =
  let open QCheck2 in
  [
    Test.make ~name:"hash and trie answer stores are observationally equal" ~count:100
      (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 40) Generators.term_gen)
      (fun terms ->
        let hash = Answer_store.Hash.create () in
        let trie = Answer_store.Trie.create () in
        List.for_all
          (fun t ->
            let c = Canon.of_term (Term.copy t) in
            Answer_store.Hash.insert hash c = Answer_store.Trie.insert trie c)
          terms
        && Answer_store.Hash.to_list hash = Answer_store.Trie.to_list trie);
    Test.make ~name:"first_string lookup is a superset of unifiable clauses" ~count:100
      (QCheck2.Gen.pair
         (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 20) Generators.term_gen)
         Generators.term_gen)
      (fun (heads, call) ->
        let heads = List.map (fun h -> Term.app "p" [ Term.copy h ]) heads in
        let call = Term.app "p" [ Term.copy call ] in
        let trie = First_string.create () in
        List.iteri
          (fun i h ->
            First_string.insert trie i
              (match h with Term.Struct (_, args) -> args | _ -> [||]))
          heads;
        let candidates =
          First_string.lookup trie (match call with Term.Struct (_, args) -> args | _ -> [||])
        in
        let trail = Trail.create () in
        List.for_all
          (fun (i, h) ->
            let m = Trail.mark trail in
            let unifies = Unify.unify trail (Term.copy call) (Term.copy h) in
            Trail.undo_to trail m;
            (not unifies) || List.mem i candidates)
          (List.mapi (fun i h -> (i, h)) heads));
  ]

let suite = cases @ List.map (QCheck_alcotest.to_alcotest ~long:false) props

let disc_cases =
  let open Xsb in
  [
    t "disc tree: discriminates across clause variables" `Quick (fun () ->
        (* first_string stops at the variable; the discrimination tree
           keeps discriminating on f(1) vs f(2) *)
        let tree = Disc_tree.create () in
        Disc_tree.insert tree 0 (args_of "p(g(X), f(1))");
        Disc_tree.insert tree 1 (args_of "p(g(X), f(2))");
        check_ints "only the f(1) clause" [ 0 ] (Disc_tree.lookup tree (args_of "p(g(a), f(1))"));
        check_ints "only the f(2) clause" [ 1 ] (Disc_tree.lookup tree (args_of "p(g(b), f(2))"));
        (* same clauses through first_string: no discrimination *)
        let fs = First_string.create () in
        First_string.insert fs 0 (args_of "p(g(X), f(1))");
        First_string.insert fs 1 (args_of "p(g(X), f(2))");
        check_ints "first_string returns both" [ 0; 1 ]
          (First_string.lookup fs (args_of "p(g(a), f(1))")));
    t "disc tree: call variables skip stored subterms" `Quick (fun () ->
        let tree = Disc_tree.create () in
        Disc_tree.insert tree 0 (args_of "p(g(a), 1)");
        Disc_tree.insert tree 1 (args_of "p(h(b,c), 2)");
        Disc_tree.insert tree 2 (args_of "p(k, 3)");
        check_ints "open first arg" [ 0; 1; 2 ] (Disc_tree.lookup tree (args_of "p(X, Y)"));
        check_ints "open first, bound second" [ 1 ] (Disc_tree.lookup tree (args_of "p(X, 2)")));
    t "disc tree: wildcard in clause matches whole call subterm" `Quick (fun () ->
        let tree = Disc_tree.create () in
        Disc_tree.insert tree 0 (args_of "p(X, tail)");
        Disc_tree.insert tree 1 (args_of "p(f(f(f(a))), tail)");
        check_ints "deep call matches both" [ 0; 1 ]
          (Disc_tree.lookup tree (args_of "p(f(f(f(a))), tail)"));
        check_ints "other deep call matches wildcard only" [ 0 ]
          (Disc_tree.lookup tree (args_of "p(f(f(f(b))), tail)")));
    t "disc tree via the index directive" `Quick (fun () ->
        let db = Xsb.Database.create () in
        ignore
          (Xsb.Loader.consult_string db
             ":- index(p/2, disc).\np(g(X), f(1)). p(g(X), f(2)). p(h, f(1)).");
        let pred = Option.get (Xsb.Database.find db "p" 2) in
        check_int "discriminated" 2 (List.length (Xsb.Pred.lookup pred (args_of "p(W, f(1))"))));
  ]

let disc_props =
  let open QCheck2 in
  [
    Test.make ~name:"disc tree lookup is a superset of unifiable clauses" ~count:150
      (QCheck2.Gen.pair
         (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 20) Generators.term_gen)
         Generators.term_gen)
      (fun (heads, call) ->
        let open Xsb in
        let heads = List.map (fun h -> Term.app "p" [ Term.copy h ]) heads in
        let call = Term.app "p" [ Term.copy call ] in
        let tree = Disc_tree.create () in
        List.iteri
          (fun i h ->
            Disc_tree.insert tree i (match h with Term.Struct (_, args) -> args | _ -> [||]))
          heads;
        let candidates =
          Disc_tree.lookup tree (match call with Term.Struct (_, args) -> args | _ -> [||])
        in
        let trail = Trail.create () in
        List.for_all
          (fun (i, h) ->
            let m = Trail.mark trail in
            let unifies = Unify.unify trail (Term.copy call) (Term.copy h) in
            Trail.undo_to trail m;
            (not unifies) || List.mem i candidates)
          (List.mapi (fun i h -> (i, h)) heads));
  ]

let suite = suite @ disc_cases @ List.map (QCheck_alcotest.to_alcotest ~long:false) disc_props

(* the payload-carrying trie index behind the SLG machine's answer tables *)
let answer_index_cases =
  let c s = Canon.of_term (Parser.term_of_string s) in
  [
    t "answer index: add/find/get keep insertion order" `Quick (fun () ->
        let idx = Answer_index.create () in
        check_int "pos 0" 0 (Answer_index.add idx (c "p(1,2)") "a");
        check_int "pos 1" 1 (Answer_index.add idx (c "p(1,3)") "b");
        check_int "pos 2" 2 (Answer_index.add idx (c "p(1,2)") "c");
        check_int "size counts entries" 3 (Answer_index.size idx);
        Alcotest.(check string) "get by position" "b" (Answer_index.get idx 1);
        Alcotest.(check (list string))
          "find is exact-key, insertion order" [ "a"; "c" ]
          (Answer_index.find idx (c "p(1,2)"));
        Alcotest.(check (list string)) "find misses" [] (Answer_index.find idx (c "p(2,2)")));
    t "answer index: find is variant lookup, not unification" `Quick (fun () ->
        let idx = Answer_index.create () in
        ignore (Answer_index.add idx (c "p(X,Y)") 0);
        check_int "variant found" 1 (List.length (Answer_index.find idx (c "p(A,B)")));
        check_int "instance not a variant" 0 (List.length (Answer_index.find idx (c "p(1,2)"))));
    t "answer index: bound skeleton prunes candidates" `Quick (fun () ->
        let idx = Answer_index.create () in
        List.iteri
          (fun i s -> ignore (Answer_index.add idx (c s) i))
          [ "p(1,2)"; "p(1,3)"; "p(2,2)"; "p(X,4)"; "p(f(1),5)" ];
        let positions skel = List.map fst (Answer_index.lookup idx (c skel)) in
        check_ints "first arg 1 (plus stored var)" [ 0; 1; 3 ] (positions "p(1,W)");
        check_ints "first arg f(1)" [ 3; 4 ] (positions "p(f(1),W)");
        check_ints "open call sees all" [ 0; 1; 2; 3; 4 ] (positions "p(V,W)");
        check_ints "both args bound" [ 0 ] (positions "p(1,2)");
        check_ints "second arg bound" [ 0; 2 ] (positions "p(V,2)"));
    t "answer index: skeleton variable skips whole stored subterms" `Quick (fun () ->
        let idx = Answer_index.create () in
        List.iteri
          (fun i s -> ignore (Answer_index.add idx (c s) i))
          [ "p(f(g(1),2),a)"; "p(h,a)"; "p(h,b)" ];
        let positions skel = List.map fst (Answer_index.lookup idx (c skel)) in
        check_ints "skip deep structure" [ 0; 1 ] (positions "p(X,a)");
        check_ints "bound deep structure" [ 0 ] (positions "p(f(g(1),2),X)"));
    t "answer index: iter_matching honors ~from" `Quick (fun () ->
        let idx = Answer_index.create () in
        List.iteri
          (fun i s -> ignore (Answer_index.add idx (c s) i))
          [ "p(1,2)"; "p(2,2)"; "p(1,3)" ];
        let seen = ref [] in
        Answer_index.iter_matching ~from:1 idx (c "p(1,W)") (fun pos _ ->
            seen := pos :: !seen);
        check_ints "only positions >= from" [ 2 ] (List.rev !seen));
  ]

let answer_index_props =
  let open QCheck2 in
  [
    (* the acceptance property for the tentpole: filtering a full scan by
       unification and filtering the index candidates by unification give
       the same answers, i.e. the candidate set is a superset of the
       unifying entries (and trivially a subset of the store) *)
    Test.make ~name:"answer index lookup is a superset of unifiable entries" ~count:200
      (QCheck2.Gen.pair
         (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 25) Generators.term_gen)
         Generators.term_gen)
      (fun (stored, skel) ->
        let keys = List.map (fun t -> Canon.of_term (Term.app "p" [ Term.copy t ])) stored in
        let skel = Canon.of_term (Term.app "p" [ Term.copy skel ]) in
        let idx = Answer_index.create () in
        List.iteri (fun i k -> ignore (Answer_index.add idx k i)) keys;
        let candidates = List.map fst (Answer_index.lookup idx skel) in
        let trail = Trail.create () in
        List.for_all
          (fun (i, k) ->
            let m = Trail.mark trail in
            let unifies = Unify.unify trail (Canon.to_term skel) (Canon.to_term k) in
            Trail.undo_to trail m;
            (not unifies) || List.mem i candidates)
          (List.mapi (fun i k -> (i, k)) keys));
  ]

let suite =
  suite @ answer_index_cases @ List.map (QCheck_alcotest.to_alcotest ~long:false) answer_index_props

(* ---- call-subsumption retrieval and the time-stamped index ---- *)

let subsumption_cases =
  let c s = Canon.of_term (Parser.term_of_string s) in
  [
    t "retrieve_subsuming: exact on non-linear keys" `Quick (fun () ->
        let idx = Answer_index.create () in
        List.iteri
          (fun i s -> ignore (Answer_index.add idx (c s) i : int))
          [ "p(X,X)"; "p(X,Y)"; "p(1,Y)" ];
        let hits probe = List.map fst (Answer_index.retrieve_subsuming idx (c probe)) in
        check_ints "p(1,1) matched by all three" [ 0; 1; 2 ] (hits "p(1,1)");
        check_ints "p(1,2) only linear keys" [ 1; 2 ] (hits "p(1,2)");
        check_ints "p(2,2) not the bound key" [ 0; 1 ] (hits "p(2,2)");
        check_ints "p(f(A),f(A)) respects shared probe vars" [ 0; 1 ] (hits "p(f(A),f(A))");
        check_ints "p(A,B) variants and nothing stricter" [ 1 ] (hits "p(A,B)"));
    t "retrieve_subsuming: probe variable matches stored variables only" `Quick (fun () ->
        let idx = Answer_index.create () in
        List.iteri
          (fun i s -> ignore (Answer_index.add idx (c s) i : int))
          [ "p(f(X))"; "p(Y)" ];
        check_ints "open probe" [ 1 ]
          (List.map fst (Answer_index.retrieve_subsuming idx (c "p(Z)")));
        check_ints "deep probe hits both" [ 0; 1 ]
          (List.map fst (Answer_index.retrieve_subsuming idx (c "p(f(1))"))));
  ]

let subsumption_props =
  let open QCheck2 in
  [
    (* the tentpole "iff" property: an entry comes back from
       [retrieve_subsuming] exactly when one-sided unification says the
       stored key generalizes the probe *)
    Test.make ~name:"retrieve_subsuming hits exactly the subsuming keys" ~count:300
      (Gen.pair (Gen.list_size (Gen.int_range 1 25) Generators.term_gen) Generators.term_gen)
      (fun (stored, probe) ->
        let keys = List.map (fun u -> Canon.of_term (Term.app "p" [ Term.copy u ])) stored in
        let probe = Canon.of_term (Term.app "p" [ Term.copy probe ]) in
        let idx = Answer_index.create () in
        List.iteri (fun i k -> ignore (Answer_index.add idx k i : int)) keys;
        let hits = List.map fst (Answer_index.retrieve_subsuming idx probe) in
        let trail = Trail.create () in
        List.for_all
          (fun (i, k) ->
            let subsumes =
              Unify.instance_of trail ~instance:(Canon.to_term probe)
                ~general:(Canon.to_term k)
            in
            List.mem i hits = subsumes)
          (List.mapi (fun i k -> (i, k)) keys));
    Test.make ~name:"retrieve_subsuming finds the general key of every specialization"
      ~count:300 Generators.subsumption_pair_gen
      (fun (general, specific) ->
        let idx = Answer_index.create () in
        ignore (Answer_index.add idx (Canon.of_term (Term.app "p" [ general ])) 0 : int);
        List.map fst
          (Answer_index.retrieve_subsuming idx
             (Canon.of_term (Term.app "p" [ Term.copy specific ])))
        = [ 0 ]);
    (* the time-stamp property: with an open skeleton, polling from a
       stamp returns exactly the entries inserted at or after it *)
    Test.make ~name:"stamped retrieval returns exactly the entries after the stamp" ~count:300
      (Gen.pair (Gen.list_size (Gen.int_range 1 25) Generators.term_gen) (Gen.int_range 0 30))
      (fun (stored, from) ->
        let idx = Answer_index.create () in
        List.iteri
          (fun i u ->
            ignore (Answer_index.add idx (Canon.of_term (Term.app "p" [ Term.copy u ])) i : int))
          stored;
        let skel = Canon.of_term (Term.app "p" [ Term.fresh_var () ]) in
        let seen = ref [] in
        Answer_index.iter_matching ~from idx skel (fun pos _ -> seen := pos :: !seen);
        let n = List.length stored in
        List.rev !seen = List.init (max 0 (n - from)) (fun i -> from + i));
    Test.make ~name:"stamped lookup is the unstamped lookup filtered by position" ~count:300
      (Gen.triple
         (Gen.list_size (Gen.int_range 1 25) Generators.term_gen)
         Generators.term_gen (Gen.int_range 0 30))
      (fun (stored, skel, from) ->
        let idx = Answer_index.create () in
        List.iteri
          (fun i u ->
            ignore (Answer_index.add idx (Canon.of_term (Term.app "p" [ Term.copy u ])) i : int))
          stored;
        let skel = Canon.of_term (Term.app "p" [ Term.copy skel ]) in
        let at from =
          let seen = ref [] in
          Answer_index.iter_matching ~from idx skel (fun pos _ -> seen := pos :: !seen);
          List.rev !seen
        in
        at from = List.filter (fun pos -> pos >= from) (at 0));
  ]

let suite =
  suite @ subsumption_cases @ List.map (QCheck_alcotest.to_alcotest ~long:false) subsumption_props
