(* Random generators shared by the property-based tests. *)

open Xsb

let atom_names = [ "a"; "b"; "c"; "f"; "g"; "point"; "pair" ]

let term_gen =
  let open QCheck2.Gen in
  sized (fun size ->
      fix
        (fun self (size, vars) ->
          if size <= 0 then
            oneof
              [
                map (fun i -> Term.Int i) (int_range (-5) 5);
                map (fun n -> Term.Atom n) (oneofl atom_names);
                map (fun i -> List.nth vars (i mod List.length vars)) (int_range 0 7);
              ]
          else
            frequency
              [
                (2, map (fun n -> Term.Atom n) (oneofl atom_names));
                (1, map (fun i -> List.nth vars (i mod List.length vars)) (int_range 0 7));
                ( 3,
                  let* name = oneofl [ "f"; "g"; "h" ] in
                  let* arity = int_range 1 3 in
                  let* args = list_repeat arity (self (size / 2, vars)) in
                  return (Term.app name args) );
              ])
        (min size 8, List.init 3 (fun _ -> Term.fresh_var ())))

let term_print t = Term.to_string t

let arbitrary_term = QCheck2.Gen.map (fun t -> t) term_gen

(* a random edge relation over nodes 1..n *)
let edges_gen ~n ~m =
  QCheck2.Gen.(list_repeat m (pair (int_range 1 n) (int_range 1 n)))

let edge_facts edges =
  String.concat "\n"
    (List.map (fun (a, b) -> Printf.sprintf "edge(%d,%d)." a b) edges)

(* ground-truth reachability by plain BFS *)
let reachable edges start =
  let adj = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      Hashtbl.replace adj a (b :: (Option.value (Hashtbl.find_opt adj a) ~default:[])))
    edges;
  let seen = Hashtbl.create 16 in
  let rec go frontier =
    match frontier with
    | [] -> ()
    | x :: rest ->
        let next =
          List.filter
            (fun y ->
              if Hashtbl.mem seen y then false
              else begin
                Hashtbl.add seen y ();
                true
              end)
            (Option.value (Hashtbl.find_opt adj x) ~default:[])
        in
        go (next @ rest)
  in
  go [ start ];
  List.sort_uniq compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])

(* ---- random range-restricted datalog programs (differential suite) ----

   Rules chain their variables, p(V0,Vn) :- b1(V0,V1), ..., bn(V(n-1),Vn),
   so every generated rule is range-restricted by construction; body
   predicates are drawn from both the EDB and the IDB, which yields left-,
   right- and double-recursive rules as well as mutual recursion. *)

type datalog_rule = { dr_head : string; dr_body : string list }
type datalog_program = { dp_facts : (string * int * int) list; dp_rules : datalog_rule list }

let datalog_edb = [ "e1"; "e2" ]
let datalog_idb = [ "p"; "q"; "r" ]

let datalog_program_gen =
  let open QCheck2.Gen in
  let fact =
    let* pred = oneofl datalog_edb in
    let* a = int_range 1 5 in
    let* b = int_range 1 5 in
    return (pred, a, b)
  in
  let rule =
    let* head = oneofl datalog_idb in
    let* len = int_range 1 3 in
    let* body = list_repeat len (oneofl (datalog_edb @ datalog_idb)) in
    return { dr_head = head; dr_body = body }
  in
  let* facts = list_size (int_range 3 10) fact in
  let* rules = list_size (int_range 2 6) rule in
  return { dp_facts = facts; dp_rules = rules }

let datalog_rule_text r =
  let v i = Printf.sprintf "V%d" i in
  let lits = List.mapi (fun i pred -> Printf.sprintf "%s(%s,%s)" pred (v i) (v (i + 1))) r.dr_body in
  Printf.sprintf "%s(%s,%s) :- %s." r.dr_head (v 0)
    (v (List.length r.dr_body))
    (String.concat ", " lits)

let datalog_text dp =
  String.concat "\n"
    (List.map (fun (p, a, b) -> Printf.sprintf "%s(%d,%d)." p a b) dp.dp_facts
    @ List.map datalog_rule_text dp.dp_rules)

(* ---- random stratified ground programs with negation ----

   Atom (s, c) denotes p<s>(c). A rule whose head lives in stratum s only
   negates atoms of strictly lower strata, so the program is stratified by
   construction and its well-founded model is total. *)

type ground_rule = {
  gr_head : int * int;  (* (stratum, constant) *)
  gr_pos : (int * int) list;  (* strata <= head stratum *)
  gr_neg : (int * int) list;  (* strata < head stratum *)
}

let stratified_strata = 3
let stratified_constants = 5

let stratified_gen =
  let open QCheck2.Gen in
  let atom_in lo hi =
    let* s = int_range lo hi in
    let* c = int_range 0 (stratified_constants - 1) in
    return (s, c)
  in
  let rule s =
    let* c = int_range 0 (stratified_constants - 1) in
    let* pos = list_size (int_range 0 2) (atom_in 0 s) in
    let* neg = if s = 0 then return [] else list_size (int_range 0 2) (atom_in 0 (s - 1)) in
    return { gr_head = (s, c); gr_pos = pos; gr_neg = neg }
  in
  let* per_stratum =
    flatten_l (List.init stratified_strata (fun s -> list_size (int_range 1 5) (rule s)))
  in
  return (List.concat per_stratum)

let ground_atom_text (s, c) = Printf.sprintf "p%d(%d)" s c
let ground_atom_canon (s, c) = Canon.of_term (Term.app (Printf.sprintf "p%d" s) [ Term.Int c ])

let stratified_text rules =
  String.concat "\n"
    (List.map
       (fun r ->
         let lits =
           List.map ground_atom_text r.gr_pos
           @ List.map (fun a -> "tnot(" ^ ground_atom_text a ^ ")") r.gr_neg
         in
         match lits with
         | [] -> ground_atom_text r.gr_head ^ "."
         | _ -> Printf.sprintf "%s :- %s." (ground_atom_text r.gr_head) (String.concat ", " lits))
       rules)

let stratified_universe =
  List.concat
    (List.init stratified_strata (fun s ->
         List.init stratified_constants (fun c -> (s, c))))

(* ---- random non-stratified ground programs ----

   Same atom space as the stratified generator, but negative literals
   may target any stratum — including the head's own, so negative loops
   (and hence genuinely three-valued well-founded models) arise
   routinely. *)

let nonstratified_gen =
  let open QCheck2.Gen in
  let atom =
    let* s = int_range 0 (stratified_strata - 1) in
    let* c = int_range 0 (stratified_constants - 1) in
    return (s, c)
  in
  let rule =
    let* head = atom in
    let* pos = list_size (int_range 0 2) atom in
    let* neg = list_size (int_range 0 2) atom in
    return { gr_head = head; gr_pos = pos; gr_neg = neg }
  in
  list_size (int_range 2 10) rule

(* ground-truth win/1 by backward induction on an acyclic graph *)
let win_values moves nodes =
  let adj = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      Hashtbl.replace adj a (b :: (Option.value (Hashtbl.find_opt adj a) ~default:[])))
    moves;
  let memo = Hashtbl.create 16 in
  let rec win x =
    match Hashtbl.find_opt memo x with
    | Some v -> v
    | None ->
        let v =
          List.exists (fun y -> not (win y)) (Option.value (Hashtbl.find_opt adj x) ~default:[])
        in
        Hashtbl.add memo x v;
        v
  in
  List.map (fun x -> (x, win x)) nodes

(* ---- call-subsumption shapes ----

   [subsumption_pair_gen] produces (general, specific): [specific] is
   built from [general] by binding a random subset of its variables to
   small ground terms, so the specific term is an instance of the
   general one by construction. The index property suite uses the pair
   to exercise subsumption retrieval; the differential corpus biases
   its query sequences the same way, toward repeated calls that share a
   shape. *)

let ground_gen =
  let open QCheck2.Gen in
  oneof
    [
      map (fun i -> Term.Int i) (int_range (-5) 5);
      map (fun n -> Term.Atom n) (oneofl atom_names);
      (let* name = oneofl [ "f"; "g" ] in
       let* i = int_range 0 3 in
       return (Term.app name [ Term.Int i ]));
    ]

let subsumption_pair_gen =
  let open QCheck2.Gen in
  let* general = term_gen in
  let general = Term.copy general in
  let vars = Term.vars general in
  let* picks = list_repeat (List.length vars) (pair bool ground_gen) in
  let trail = Trail.create () in
  let m = Trail.mark trail in
  List.iter2 (fun v (bind_it, g) -> if bind_it then Term.bind trail v g) vars picks;
  let specific = Term.copy general in
  Trail.undo_to trail m;
  return (general, specific)
