open Xsb

let t = Alcotest.test_case
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let session text =
  let s = Session.create () in
  Session.consult s text;
  s

let count text query = Session.count (session text) query
let succeeds text query = Session.succeeds (session text) query

let tc_program edges =
  ":- table path/2.\npath(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), edge(Z,Y).\n"
  ^ Generators.edge_facts edges

let cycle n = List.init n (fun i -> (i + 1, if i + 1 = n then 1 else i + 2))
let chain n = List.init (n - 1) (fun i -> (i + 1, i + 2))

let cases =
  [
    t "SLD facts and rules" `Quick (fun () ->
        check_int "all" 3 (count "p(1). p(2). p(3)." "p(X)");
        check_int "filtered" 1 (count "p(1). p(2). q(X) :- p(X), X > 1." "q(X)"));
    t "left recursion terminates on cycles (the headline claim)" `Quick (fun () ->
        check_int "cycle answers" 8 (count (tc_program (cycle 8)) "path(1,X)"));
    t "right recursion tabled" `Quick (fun () ->
        let program =
          ":- table path/2.\npath(X,Y) :- edge(X,Y).\npath(X,Y) :- edge(X,Z), path(Z,Y).\n"
          ^ Generators.edge_facts (cycle 6)
        in
        check_int "cycle answers" 6 (count program "path(1,X)"));
    t "double recursion tabled" `Quick (fun () ->
        let program =
          ":- table path/2.\npath(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), path(Z,Y).\n"
          ^ Generators.edge_facts (chain 10)
        in
        check_int "chain pairs" 9 (count program "path(1,X)"));
    t "untabled left recursion hits the step limit" `Quick (fun () ->
        let s = Session.create () in
        Session.consult s
          ("path(X,Y) :- path(X,Z), edge(Z,Y).\npath(X,Y) :- edge(X,Y).\n"
          ^ Generators.edge_facts (chain 4));
        Engine.set_max_steps (Session.engine s) 50_000;
        match Session.query s "path(1,X)" with
        | exception Machine.Step_limit -> ()
        | _ -> Alcotest.fail "expected Step_limit");
    t "variant tabling reuses tables" `Quick (fun () ->
        let s = session (tc_program (chain 5)) in
        ignore (Session.query s "path(1,X)");
        let before = (Engine.stats (Session.engine s)).Machine.st_subgoals in
        ignore (Session.query s "path(1,Y)");
        let after = (Engine.stats (Session.engine s)).Machine.st_subgoals in
        (* the second query only creates its private query table *)
        check_int "one new subgoal" (before + 1) after);
    t "tabling avoids exponential recomputation" `Quick (fun () ->
        (* fib without tabling is exponential; tabled it is linear *)
        let s =
          session
            ":- table fib/2.\n\
             fib(0, 0). fib(1, 1).\n\
             fib(N, F) :- N > 1, N1 is N - 1, N2 is N - 2, fib(N1, F1), fib(N2, F2), F is F1 + F2."
        in
        check_bool "fib 20" true (Session.succeeds s "fib(20, 6765)");
        let stats = Engine.stats (Session.engine s) in
        check_bool "few subgoals" true (stats.Machine.st_subgoals < 50));
    t "win on a chain (negation)" `Quick (fun () ->
        let s =
          session
            ":- table win/1.\nwin(X) :- move(X,Y), tnot(win(Y)).\nmove(1,2). move(2,3). move(3,4)."
        in
        List.iter
          (fun (n, expected) ->
            check_bool (Printf.sprintf "win(%d)" n) expected
              (Session.succeeds s (Printf.sprintf "win(%d)" n)))
          [ (1, true); (2, false); (3, true); (4, false) ]);
    t "win matches backward induction on random dags" `Quick (fun () ->
        (* layered random dag: edges only go to higher layers => acyclic *)
        let moves =
          List.concat_map
            (fun i -> List.filter_map (fun j -> if (i * 7) + j mod 3 <> 1 then Some (i, i + j) else None)
                (List.init 3 (fun k -> k + 1)))
            (List.init 12 (fun i -> i + 1))
          |> List.filter (fun (_, b) -> b <= 15)
        in
        let expected = Generators.win_values moves (List.init 15 (fun i -> i + 1)) in
        let s =
          session
            (":- table win/1.\nwin(X) :- move(X,Y), tnot(win(Y)).\n"
            ^ String.concat "\n" (List.map (fun (a, b) -> Printf.sprintf "move(%d,%d)." a b) moves))
        in
        List.iter
          (fun (n, v) ->
            check_bool (Printf.sprintf "win(%d)" n) v (Session.succeeds s (Printf.sprintf "win(%d)" n)))
          expected);
    t "e_tnot agrees with tnot on acyclic games" `Quick (fun () ->
        let moves = chain 8 in
        let mk neg =
          session
            (Printf.sprintf ":- table win/1.\nwin(X) :- move(X,Y), %s(win(Y)).\n" neg
            ^ String.concat "\n" (List.map (fun (a, b) -> Printf.sprintf "move(%d,%d)." a b) moves))
        in
        let s1 = mk "tnot" and s2 = mk "e_tnot" in
        List.iter
          (fun n ->
            let q = Printf.sprintf "win(%d)" n in
            check_bool q (Session.succeeds s1 q) (Session.succeeds s2 q))
          (List.init 8 (fun i -> i + 1)));
    t "stratified negation across predicates" `Quick (fun () ->
        let s =
          session
            ":- table reach/1, unreach/1.\n\
             reach(1).\n\
             reach(Y) :- reach(X), edge(X,Y).\n\
             unreach(X) :- node(X), tnot(reach(X)).\n\
             edge(1,2). edge(2,3). edge(5,6).\n\
             node(1). node(2). node(3). node(4). node(5). node(6)."
        in
        check_int "unreachable" 3 (Session.count s "unreach(X)"));
    t "tnot flounders on non-ground calls" `Quick (fun () ->
        let s = session ":- table p/1.\np(1)." in
        match Session.query s "tnot(p(X))" with
        | exception Machine.Floundered _ -> ()
        | _ -> Alcotest.fail "expected floundering error");
    t "non-stratified raises in stratified mode" `Quick (fun () ->
        let s = session ":- table p/0, q/0.\np :- tnot(q).\nq :- tnot(p)." in
        match Session.query s "p" with
        | exception Machine.Non_stratified _ -> ()
        | _ -> Alcotest.fail "expected Non_stratified");
    t "cut commits to first clause" `Quick (fun () ->
        check_int "one answer" 1
          (count "tn(null, unknown) :- !.\ntn(X, X)." "tn(null, R)");
        check_int "fallthrough" 1 (count "tn(null, unknown) :- !.\ntn(X, X)." "tn(a, R)"));
    t "cut prunes within the clause body" `Quick (fun () ->
        check_int "first solution only" 1
          (count "p(1). p(2). p(3).\nfirst(X) :- p(X), !." "first(X)"));
    t "negation as failure" `Quick (fun () ->
        check_bool "fails" false (succeeds "p(1)." "\\+ p(1)");
        check_bool "succeeds" true (succeeds "p(1)." "\\+ p(2)"));
    t "if-then-else" `Quick (fun () ->
        let s = session "max(X,Y,Z) :- (X >= Y -> Z = X ; Z = Y)." in
        check_bool "then" true (Session.succeeds s "max(7,3,7)");
        check_bool "else" true (Session.succeeds s "max(3,7,7)");
        check_int "deterministic" 1 (Session.count s "max(3,7,Z)"));
    t "if-then-else condition commits to first solution" `Quick (fun () ->
        check_int "single" 1 (count "p(1). p(2)." "(p(X) -> true ; fail)"));
    t "disjunction" `Quick (fun () ->
        check_int "both branches" 2 (count "p(1)." "(p(X) ; X = 9)"));
    t "findall" `Quick (fun () ->
        let s = session "p(3). p(1). p(2)." in
        check_bool "collects in order" true (Session.succeeds s "findall(X, p(X), [3,1,2])");
        check_bool "empty list on failure" true (Session.succeeds s "findall(X, fail, [])"));
    t "findall over tabled goal" `Quick (fun () ->
        let s = session (tc_program (chain 5)) in
        check_bool "all paths" true
          (Session.succeeds s "findall(Y, path(1,Y), L), length(L, 4)"));
    t "tfindall waits for completion" `Quick (fun () ->
        let s = session (tc_program (cycle 4)) in
        check_bool "complete answers" true
          (Session.succeeds s "tfindall(Y, path(1,Y), L), length(L, 4)"));
    t "bagof fails on empty, setof sorts" `Quick (fun () ->
        let s = session "p(3). p(1). p(3)." in
        check_bool "bagof nonempty" true (Session.succeeds s "bagof(X, p(X), [3,1,3])");
        check_bool "bagof empty fails" false (Session.succeeds s "bagof(X, q(X), _)");
        check_bool "setof sorted unique" true (Session.succeeds s "setof(X, p(X), [1,3])"));
    t "arithmetic builtins" `Quick (fun () ->
        let s = session "" in
        List.iter
          (fun q -> check_bool q true (Session.succeeds s q))
          [
            "X is 2 + 3 * 4, X =:= 14";
            "X is 7 // 2, X =:= 3";
            "X is 7 mod 2, X =:= 1";
            "X is -7 mod 2, X =:= 1";
            "X is min(3, 5), X =:= 3";
            "X is 2 ** 10, X =:= 1024.0";
            "X is 2 ^ 10, X =:= 1024";
            "X is abs(-5), X =:= 5";
            "1.5 < 2";
            "X is 6 / 3, X == 2";
            "X is 7 / 2, X =:= 3.5";
          ]);
    t "type-test builtins" `Quick (fun () ->
        let s = session "" in
        List.iter
          (fun q -> check_bool q true (Session.succeeds s q))
          [
            "var(_)";
            "nonvar(a)";
            "atom(foo)";
            "number(1)";
            "number(1.5)";
            "integer(3)";
            "float(3.5)";
            "compound(f(x))";
            "atomic('a b')";
            "is_list([1,2])";
            "ground(f(a,b))";
            "\\+ ground(f(a,X))";
          ]);
    t "term construction builtins" `Quick (fun () ->
        let s = session "" in
        List.iter
          (fun q -> check_bool q true (Session.succeeds s q))
          [
            "functor(f(a,b), f, 2)";
            "functor(T, point, 2), T = point(_, _)";
            "arg(2, f(a,b,c), b)";
            "f(a,b) =.. [f,a,b]";
            "T =.. [g,1], T == g(1)";
            "copy_term(f(X,X,Y), C), C = f(1,Z,2), Z == 1";
            "atom_codes(abc, [97,98,99])";
            "atom_length(hello, 5)";
            "atom_concat(foo, bar, foobar)";
            "atom_concat(X, Y, ab), X == '', Y == ab";
            "between(1, 5, 3)";
            "findall(X, between(1,4,X), [1,2,3,4])";
            "succ(3, 4)";
            "succ(X, 4), X =:= 3";
            "length([a,b,c], 3)";
            "length(L, 2), L = [_,_]";
            "compare(<, 1, 2)";
            "X = f(Y), X \\== f(Z)";
          ]);
    t "assert and retract at runtime" `Quick (fun () ->
        let s = session ":- dynamic fact/1." in
        check_bool "assert" true (Session.succeeds s "assert(fact(1)), assert(fact(2)), fact(2)");
        check_int "both" 2 (Session.count s "fact(X)");
        check_bool "retract" true (Session.succeeds s "retract(fact(1))");
        check_int "one left" 1 (Session.count s "fact(X)");
        check_bool "retractall" true (Session.succeeds s "retractall(fact(_))");
        check_int "none" 0 (Session.count s "fact(X)"));
    t "assert to a static predicate throws a catchable error" `Quick (fun () ->
        let s = session "p(1)." in
        (match Session.query s "assert(p(2))" with
        | exception Machine.Prolog_ball _ -> ()
        | _ -> Alcotest.fail "expected error ball");
        check_bool "catchable" true (Session.succeeds s "catch(assert(p(2)), error(_, _), true)"));
    t "call/1 and call/N" `Quick (fun () ->
        let s = session "add(X, Y, Z) :- Z is X + Y.\np(1). p(2)." in
        check_bool "call/1" true (Session.succeeds s "call(p(1))");
        check_int "call/3 partial" 1 (Session.count s "call(add(1), 2, Z), Z =:= 3");
        check_int "meta over all" 2 (Session.count s "G = p(X), call(G)"));
    t "query_first stops early" `Quick (fun () ->
        let s = session "nat(0).\nnat(X) :- nat(Y), X is Y + 1." in
        Engine.set_max_steps (Session.engine s) 1_000_000;
        match Session.query_first s "nat(X)" with
        | Some _ -> ()
        | None -> Alcotest.fail "expected a solution");
    t "hilog call through apply" `Quick (fun () ->
        let s =
          session
            ":- hilog sq.\nsq(X, Y) :- Y is X * X.\nmaplike(F, X, Y) :- F(X, Y)."
        in
        check_bool "generic apply" true (Session.succeeds s "maplike(sq, 5, 25)"));
    t "deep recursion: long chains do not overflow" `Quick (fun () ->
        let s = session (tc_program (chain 2000)) in
        check_int "all reachable" 1999 (Session.count s "path(1,X)"));
    t "same_generation" `Quick (fun () ->
        let s =
          session
            ":- table sg/2.\n\
             sg(X,Y) :- sib(X,Y).\n\
             sg(X,Y) :- par(X,XP), sg(XP,YP), par(Y,YP).\n\
             sib(X,Y) :- par(X,P), par(Y,P).\n\
             par(2,1). par(3,1). par(4,2). par(5,2). par(6,3). par(7,3)."
        in
        (* sg(4,Y): siblings {4,5}, cousins {6,7} *)
        check_int "generation of 4" 4 (Session.count s "sg(4, Y)"));
    t "mutually recursive tabled predicates" `Quick (fun () ->
        let s =
          session
            ":- table even/1, odd/1.\n\
             even(0).\n\
             even(X) :- X > 0, Y is X - 1, odd(Y).\n\
             odd(X) :- X > 0, Y is X - 1, even(Y)."
        in
        check_bool "even 10" true (Session.succeeds s "even(10)");
        check_bool "odd 10" false (Session.succeeds s "odd(10)"));
    t "tabled append is quadratic but correct (§5)" `Quick (fun () ->
        let s =
          session ":- table app/3.\napp([], L, L).\napp([H|T], L, [H|R]) :- app(T, L, R)."
        in
        check_int "splits" 6 (Session.count s "app(X, Y, [1,2,3,4,5])"));
    t "nested tabling through negation layers" `Quick (fun () ->
        let s =
          session
            ":- table p/1, q/1, r/1.\n\
             p(X) :- d(X), tnot(q(X)).\n\
             q(X) :- e(X), tnot(r(X)).\n\
             r(X) :- f(X).\n\
             d(1). d(2). d(3). e(1). e(2). f(2)."
        in
        (* r = {2}; q = {1}; p = d minus q = {2,3} *)
        check_int "p" 2 (Session.count s "p(X)");
        check_bool "p(2)" true (Session.succeeds s "p(2)");
        check_bool "p(1)" false (Session.succeeds s "p(1)"));
    t "abolish_all_tables clears table space" `Quick (fun () ->
        let s = session (tc_program (chain 4)) in
        ignore (Session.query s "path(1,X)");
        check_bool "tables exist" true (Engine.tables (Session.engine s) <> []);
        ignore (Session.query s "abolish_all_tables");
        (* only the transient query tables may remain, and they are
           deleted with the query *)
        check_int "cleared" 0 (List.length (Engine.tables (Session.engine s))));
    t "write goes to the engine formatter" `Quick (fun () ->
        let s = session "" in
        let buffer = Buffer.create 16 in
        (Engine.env (Session.engine s)).Machine.out <- Format.formatter_of_buffer buffer;
        ignore (Session.query s "write(f(1,[a])), nl");
        Format.pp_print_flush (Engine.env (Session.engine s)).Machine.out ();
        check_bool "printed" true (String.length (Buffer.contents buffer) > 0));
  ]

(* ---- properties: SLG answers = bottom-up model on random graphs ---- *)

let props =
  let open QCheck2 in
  [
    Test.make ~name:"SLG transitive closure = BFS reachability" ~count:60
      (Generators.edges_gen ~n:12 ~m:20) (fun edges ->
        let s = session (tc_program edges) in
        let slg =
          List.sort_uniq compare
            (List.map
               (fun (sol : Engine.solution) ->
                 match List.assoc "X" sol.Engine.bindings with
                 | Term.Int i -> i
                 | _ -> -1)
               (Session.query s "path(1,X)"))
        in
        let bfs = Generators.reachable edges 1 in
        slg = bfs);
    Test.make ~name:"SLG = semi-naive bottom-up on random datalog" ~count:60
      (Generators.edges_gen ~n:10 ~m:18) (fun edges ->
        let text = tc_program edges in
        let s = session text in
        let slg = Session.count s "path(X,Y)" in
        let clauses =
          Parser.program_of_string
            ("path(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), edge(Z,Y).\n"
            ^ Generators.edge_facts edges)
        in
        let st = Bottomup.run (Datalog.of_clauses clauses) in
        slg = Bottomup.relation_size st ("path", 2));
  ]

let suite = cases @ List.map (QCheck_alcotest.to_alcotest ~long:false) props

let exception_cases =
  [
    t "throw and catch" `Quick (fun () ->
        let s = session "risky(X) :- X > 0, throw(oops(X)).\nrisky(_)." in
        check_bool "caught" true
          (Session.succeeds s "catch(risky(5), oops(N), N =:= 5)");
        check_bool "uncaught rethrows" true
          (match Session.query s "catch(risky(5), nope, true)" with
          | exception Machine.Prolog_ball _ -> true
          | _ -> false);
        check_bool "no throw passes through" true (Session.succeeds s "catch(risky(0), _, fail)"));
    t "arithmetic errors become catchable balls" `Quick (fun () ->
        let s = session "" in
        check_bool "evaluation error" true
          (Session.succeeds s "catch(X is foo + 1, error(evaluation_error(_), _), true)");
        check_bool "zero divisor" true
          (Session.succeeds s "catch(X is 1 / 0, error(_, _), true)"));
    t "catch restores bindings before recovery" `Quick (fun () ->
        let s = session "boom(X) :- X = bound, throw(ball)." in
        check_bool "X free in recovery" true
          (Session.succeeds s "catch(boom(X), ball, var(X))"));
    t "DCG rules translate and run" `Quick (fun () ->
        let s = Session.create () in
        Prelude.load s;
        Session.consult s
          "greeting --> [hello], name.\n\
           name --> [world].\n\
           name --> [prolog].\n\
           digits([D|T]) --> digit(D), digits(T).\n\
           digits([D]) --> digit(D).\n\
           digit(D) --> [D], { D >= 48, D =< 57 }.";
        check_bool "phrase greeting" true (Session.succeeds s "phrase(greeting, [hello, world])");
        check_bool "alternative" true (Session.succeeds s "phrase(greeting, [hello, prolog])");
        check_bool "rejects" false (Session.succeeds s "phrase(greeting, [goodbye, world])");
        check_bool "digits" true (Session.succeeds s "phrase(digits([49,50,51]), [49,50,51])");
        check_int "generates both names" 2 (Session.count s "phrase(greeting, [hello, X])"));
  ]

let suite = suite @ exception_cases

let extra_cases =
  [
    t "setof groups and sorts ground solutions" `Quick (fun () ->
        let s = session "age(tom, 5). age(ann, 3). age(tom, 5)." in
        check_bool "sorted pairs" true
          (Session.succeeds s "setof(N-A, age(N, A), [ann-3, tom-5])"));
    t "findall nested inside findall" `Quick (fun () ->
        let s = session "p(1). p(2).\nq(a). q(b)." in
        check_bool "nested" true
          (Session.succeeds s
             "findall(X-L, (p(X), findall(Y, q(Y), L)), [1-[a,b], 2-[a,b]])"));
    t "catch inside findall" `Quick (fun () ->
        let s = session "maybe(1).\nmaybe(2) :- throw(stop).\nmaybe(3)." in
        check_bool "ball escapes findall" true
          (Session.succeeds s "catch(findall(X, maybe(X), _), stop, true)"));
    t "if-then-else with tabled condition" `Quick (fun () ->
        let s =
          session
            ":- table reach/1.\nreach(1).\nreach(Y) :- reach(X), e(X,Y).\ne(1,2). e(2,3)."
        in
        check_bool "tabled cond true" true (Session.succeeds s "(reach(3) -> true ; fail)");
        check_bool "tabled cond false" true (Session.succeeds s "(reach(9) -> fail ; true)"));
    t "negation over tabled call inside \\+" `Quick (fun () ->
        let s =
          session ":- table reach/1.\nreach(1).\nreach(Y) :- reach(X), e(X,Y).\ne(1,2)."
        in
        check_bool "doubly negated" true (Session.succeeds s "\\+ \\+ reach(2)");
        check_bool "negated miss" true (Session.succeeds s "\\+ reach(7)"));
    t "e_tnot reclaims abandoned tables" `Quick (fun () ->
        let s =
          session
            (":- table win/1.\nwin(X) :- move(X,Y), e_tnot(win(Y)).\n"
            ^ String.concat "\n"
                (List.map (fun i -> Printf.sprintf "move(%d,%d)." i (i + 1)) (List.init 15 (fun i -> i + 1))))
        in
        ignore (Session.succeeds s "win(1)");
        (* abandoned incomplete tables were deleted from table space *)
        let live = List.length (Engine.tables (Session.engine s)) in
        check_bool "some tables deleted" true (live < 16));
    t "copy_term preserves sharing but not identity" `Quick (fun () ->
        let s = session "" in
        check_bool "shared copy" true
          (Session.succeeds s "copy_term(f(X, X), f(A, B)), A == B");
        check_bool "independent" true
          (Session.succeeds s "T = f(X), copy_term(T, f(1)), var(X)"));
    t "retract binds the removed clause" `Quick (fun () ->
        let s = session ":- dynamic p/1." in
        ignore (Session.query s "assert(p(1)), assert(p(2))");
        check_bool "binds" true (Session.succeeds s "retract(p(X)), X =:= 1");
        check_int "one left" 1 (Session.count s "p(_)"));
    t "tabled predicates with compound answers" `Quick (fun () ->
        let s =
          session
            ":- table parts/2.\n\
             parts(base, [leg, seat]).\n\
             parts(chair, L) :- parts(base, B), append_local(B, [back], L).\n\
             append_local([], L, L).\n\
             append_local([H|T], L, [H|R]) :- append_local(T, L, R)."
        in
        check_bool "structured answer" true
          (Session.succeeds s "parts(chair, [leg, seat, back])"));
    t "runtime table declaration via directive goal" `Quick (fun () ->
        let s = session "p(1). p(2)." in
        ignore (Session.query s "table(q/1)");
        Session.consult s "q(X) :- p(X).";
        check_int "works" 2 (Session.count s "q(X)"));
    t "runtime op declaration" `Quick (fun () ->
        let s = session "" in
        ignore (Session.query s "op(700, xfx, approx)");
        Session.consult s "check(1 approx 2).";
        check_int "parsed with new op" 1 (Session.count s "check(X approx Y)"));
    t "deeply nested conjunction and disjunction" `Quick (fun () ->
        check_int "combination" 4
          (count "p(1). p(2).\nq(a). q(b)." "(p(X), (q(Y) ; q(Y))), (true ; fail)"));
    t "between generates and checks" `Quick (fun () ->
        let s = session "" in
        check_int "generate" 10 (Session.count s "between(1, 10, X)");
        check_bool "check inside" true (Session.succeeds s "between(1, 10, 5)");
        check_bool "check outside" false (Session.succeeds s "between(1, 10, 50)"));
    t "tabling with arithmetic guards (mc91)" `Quick (fun () ->
        let s =
          session
            ":- table mc/2.\n\
             mc(N, M) :- N > 100, M is N - 10.\n\
             mc(N, M) :- N =< 100, N1 is N + 11, mc(N1, M1), mc(M1, M)."
        in
        check_bool "mc91(99) = 91" true (Session.succeeds s "mc(99, 91)");
        check_bool "mc91(1) = 91" true (Session.succeeds s "mc(1, 91)"));
  ]

let suite = suite @ extra_cases

let builtin_extra_cases =
  [
    t "sort, msort, keysort builtins" `Quick (fun () ->
        let s = session "" in
        check_bool "sort dedups" true (Session.succeeds s "sort([3,1,2,1], [1,2,3])");
        check_bool "msort keeps dups" true (Session.succeeds s "msort([3,1,2,1], [1,1,2,3])");
        check_bool "keysort stable" true
          (Session.succeeds s "keysort([b-1, a-2, b-0], [a-2, b-1, b-0])"));
    t "listing prints clauses" `Quick (fun () ->
        let s = session "p(1).\np(X) :- q(X), r(X)." in
        let buffer = Buffer.create 64 in
        (Engine.env (Session.engine s)).Machine.out <- Format.formatter_of_buffer buffer;
        ignore (Session.query s "listing(p/1)");
        Format.pp_print_flush (Engine.env (Session.engine s)).Machine.out ();
        let text = Buffer.contents buffer in
        let contains hay needle =
          let nl = String.length needle and hl = String.length hay in
          let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
          go 0
        in
        check_bool "has fact" true (contains text "p(1).");
        check_bool "has rule" true (contains text ":-"));
    t "statistics prints counters" `Quick (fun () ->
        let s = session "p(1)." in
        let buffer = Buffer.create 64 in
        (Engine.env (Session.engine s)).Machine.out <- Format.formatter_of_buffer buffer;
        ignore (Session.query s "p(X), statistics");
        Format.pp_print_flush (Engine.env (Session.engine s)).Machine.out ();
        check_bool "nonempty" true (String.length (Buffer.contents buffer) > 20));
  ]

let suite = suite @ builtin_extra_cases

let edge_cases =
  [
    t "cut across a table suspension is rejected" `Quick (fun () ->
        let s =
          session
            ":- table t/1.\nt(1). t(2).\nbad(X) :- t(X), !, X > 0."
        in
        match Session.query s "bad(X)" with
        | exception Machine.Engine_error _ -> ()
        | _solutions ->
            (* acceptable alternative: the implementation may treat the
               cut locally; it must not crash or loop *)
            ());
    t "tfindall inside a recursive tabled clause suspends until completion" `Quick (fun () ->
        let s =
          session
            ":- table reach/1, summary/1.\n\
             reach(1).\n\
             reach(Y) :- reach(X), e(X,Y).\n\
             e(1,2). e(2,3).\n\
             summary(L) :- tfindall(X, reach(X), L)."
        in
        check_bool "complete summary" true
          (Session.succeeds s "summary(L), length(L, 3)"));
    t "floundering inside nested negation reports the goal" `Quick (fun () ->
        let s = session ":- table p/1.\np(1)." in
        (match Session.query s "tnot(p(_))" with
        | exception Machine.Floundered g ->
            check_bool "goal carried" true (Term.functor_of g = Some ("p", 1))
        | _ -> Alcotest.fail "expected floundering"));
    t "query variables capture all answer bindings" `Quick (fun () ->
        let s = session "pair(1, a). pair(2, b)." in
        let solutions = Session.query s "pair(X, Y)" in
        check_int "two" 2 (List.length solutions);
        List.iter
          (fun (sol : Engine.solution) ->
            check_int "two bindings" 2 (List.length sol.Engine.bindings);
            check_bool "named X" true (List.mem_assoc "X" sol.Engine.bindings);
            check_bool "named Y" true (List.mem_assoc "Y" sol.Engine.bindings))
          solutions);
    t "engine survives exceptions and stays usable" `Quick (fun () ->
        let s = session ":- table p/1.\np(1).\nboom :- throw(ball)." in
        (match Session.query s "boom" with
        | exception Machine.Prolog_ball _ -> ()
        | _ -> Alcotest.fail "expected ball");
        (* table space must be consistent afterwards *)
        check_int "still works" 1 (Session.count s "p(X)");
        check_int "and again" 1 (Session.count s "p(X)"));
    t "step limit leaves the engine reusable" `Quick (fun () ->
        let s = session "loop :- loop." in
        Engine.set_max_steps (Session.engine s) 1000;
        (match Session.query s "loop" with
        | exception Machine.Step_limit -> ()
        | _ -> Alcotest.fail "expected limit");
        Engine.set_max_steps (Session.engine s) 0;
        check_bool "usable after limit" true (Session.succeeds s "true"));
    t "findall captures a snapshot of an in-progress table" `Quick (fun () ->
        (* findall on an incomplete table must not crash; it captures the
           currently available answers (§4.7's caveat) *)
        let s =
          session
            ":- table reach/1.\n\
             reach(1).\n\
             reach(Y) :- reach(X), e(X,Y), findall(Z, reach(Z), _).\n\
             e(1,2). e(2,3)."
        in
        check_int "all reachable" 3 (Session.count s "reach(X)"));
  ]

let suite = suite @ edge_cases

let trace_cases =
  [
    t "trace sink observes call, subgoal and answer events" `Quick (fun () ->
        let s =
          session
            ":- table path/2.\npath(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), edge(Z,Y).\n\
             edge(1,2). edge(2,3)."
        in
        let ring = Obs.Ring.create 4096 in
        Session.add_sink s (Obs.Sink.Ring ring);
        ignore (Session.query s "path(1,X)");
        Session.clear_sinks s;
        let count_kind k =
          List.length
            (List.filter (fun (e : Obs.Event.t) -> e.kind = k) (Obs.Ring.to_list ring))
        in
        check_bool "calls observed" true (count_kind Obs.Event.Call > 0);
        check_bool "subgoals observed" true (count_kind Obs.Event.New_subgoal >= 1);
        (* two path answers plus two query answers *)
        check_bool "answers observed" true (count_kind Obs.Event.Answer >= 4);
        (* detaching stops events *)
        let before = Obs.Ring.length ring in
        ignore (Session.query s "edge(1,X)");
        check_int "no more events" before (Obs.Ring.length ring));
  ]

let suite = suite @ trace_cases

let scheduler_and_stats_cases =
  [
    t "drain scheduling is deduplicated on cyclic programs" `Quick (fun () ->
        (* without the c_scheduled flag the queue grows O(answers x
           consumers); with it, drains-scheduled stays O(live consumers) *)
        let s = session (tc_program (cycle 8)) in
        ignore (Session.query s "path(1,X)");
        let st = Session.stats s in
        check_bool "some drains ran" true (st.Machine.st_drains_scheduled > 0);
        check_bool
          (Printf.sprintf "drains (%d) <= answers (%d) + consumers (%d)"
             st.Machine.st_drains_scheduled st.Machine.st_answers st.Machine.st_suspensions)
          true
          (st.Machine.st_drains_scheduled <= st.Machine.st_answers + st.Machine.st_suspensions));
    t "bound call consumes a completed table through the answer index" `Quick (fun () ->
        let s = session (tc_program (cycle 6)) in
        ignore (Session.query s "path(X,Y)");
        let st = Session.stats s in
        let c0 = st.Machine.st_answer_candidates
        and f0 = st.Machine.st_answer_full_size
        and s0 = st.Machine.st_subsumed_calls in
        check_int "bound answers" 6 (Session.count s "path(1,X)");
        let dc = st.Machine.st_answer_candidates - c0
        and df = st.Machine.st_answer_full_size - f0 in
        check_bool "served by subsumption" true (st.Machine.st_subsumed_calls - s0 >= 1);
        check_bool
          (Printf.sprintf "candidates (%d) < full table size (%d)" dc df)
          true (dc < df);
        check_int "exactly the matching answers" 6 dc);
    t "pp_stats golden output" `Quick (fun () ->
        let st = Machine.fresh_stats () in
        st.Machine.st_subgoals <- 3;
        st.Machine.st_answers <- 14;
        st.Machine.st_dup_answers <- 2;
        st.Machine.st_resolutions <- 25;
        st.Machine.st_answer_probes <- 4;
        st.Machine.st_answer_candidates <- 9;
        st.Machine.st_answer_full_size <- 36;
        st.Machine.st_steps <- 120;
        let buffer = Buffer.create 256 in
        let ppf = Format.formatter_of_buffer buffer in
        Machine.pp_stats ppf st;
        Format.pp_print_flush ppf ();
        Alcotest.(check string) "golden"
          "subgoals: 3\n\
           answers: 14 (dups 2)\n\
           suspensions: 0\n\
           resumptions: 0\n\
           resolutions: 25\n\
           negative suspensions: 0\n\
           nested evaluations: 0\n\
           completions: 0\n\
           answer index probes: 4\n\
           answer index candidates: 9 (of 36 stored)\n\
           subsumed calls: 0\n\
           subsumption hits: 0\n\
           answers filtered: 0\n\
           drains scheduled: 0\n\
           sccs completed: 0\n\
           early completions: 0\n\
           max scc size: 0\n\
           invalidations: 0\n\
           repairs: 0\n\
           folds: 0\n\
           steps: 120\n"
          (Buffer.contents buffer));
    t "statistics/0 output has no run-on whitespace" `Quick (fun () ->
        let s = session "p(1)." in
        let buffer = Buffer.create 256 in
        (Engine.env (Session.engine s)).Machine.out <- Format.formatter_of_buffer buffer;
        ignore (Session.query s "p(X), statistics");
        Format.pp_print_flush (Engine.env (Session.engine s)).Machine.out ();
        let text = Buffer.contents buffer in
        let contains hay needle =
          let nl = String.length needle and hl = String.length hay in
          let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
          go 0
        in
        check_bool "has resolutions line" true (contains text "resolutions: ");
        check_bool "no double spaces" false (contains text "  "));
    t "abolish_all_tables mid-evaluation keeps in-use tables" `Quick (fun () ->
        (* abolishing from inside a derivation must not detach the tables
           the running evaluation still owns *)
        let s =
          session
            (tc_program (chain 3) ^ "\nboom :- path(1,_), abolish_all_tables.")
        in
        (* zero-variable query: both path answers dedup to one template *)
        check_int "boom once" 1 (Session.count s "boom");
        check_bool "tables consistent afterwards" true
          (List.for_all (fun (_, complete, _) -> complete) (Engine.tables (Session.engine s)));
        check_int "path still answers" 2 (Session.count s "path(1,X)"));
    t "reset_tables between queries frees completed tables" `Quick (fun () ->
        let s = session (tc_program (chain 4)) in
        check_int "first run" 3 (Session.count s "path(1,X)");
        Engine.reset_tables (Session.engine s);
        check_int "no tables left" 0 (List.length (Engine.tables (Session.engine s)));
        check_int "recomputes" 3 (Session.count s "path(1,X)"));
  ]

let suite = suite @ scheduler_and_stats_cases
