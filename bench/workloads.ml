(* Program/text generators shared by the experiment harness. *)

let buffer_program f =
  let buf = Buffer.create 4096 in
  f buf;
  Buffer.contents buf

(* move/2 facts for a complete binary tree with [2^height - 1] nodes *)
let binary_tree_moves height =
  buffer_program (fun buf ->
      let nodes = (1 lsl height) - 1 in
      for i = 1 to nodes do
        if 2 * i <= nodes then Buffer.add_string buf (Printf.sprintf "move(%d,%d).\n" i (2 * i));
        if (2 * i) + 1 <= nodes then
          Buffer.add_string buf (Printf.sprintf "move(%d,%d).\n" i ((2 * i) + 1))
      done)

let win_program ~neg height =
  (match neg with
  | `Tnot -> ":- table win/1.\nwin(X) :- move(X,Y), tnot(win(Y)).\n"
  | `Etnot -> ":- table win/1.\nwin(X) :- move(X,Y), e_tnot(win(Y)).\n"
  | `Sldnf -> "win(X) :- move(X,Y), \\+ win(Y).\n")
  ^ binary_tree_moves height

(* edge/2 cycles: edge(1,2) ... edge(n,1) *)
let cycle_edges n =
  buffer_program (fun buf ->
      for i = 1 to n - 1 do
        Buffer.add_string buf (Printf.sprintf "edge(%d,%d).\n" i (i + 1))
      done;
      Buffer.add_string buf (Printf.sprintf "edge(%d,1).\n" n))

let chain_edges n =
  buffer_program (fun buf ->
      for i = 1 to n - 1 do
        Buffer.add_string buf (Printf.sprintf "edge(%d,%d).\n" i (i + 1))
      done)

(* fanout: edge(1,1) ... edge(1,n) *)
let fanout_edges n =
  buffer_program (fun buf ->
      for i = 1 to n do
        Buffer.add_string buf (Printf.sprintf "edge(1,%d).\n" i)
      done)

let tree_edges height =
  buffer_program (fun buf ->
      let nodes = (1 lsl height) - 1 in
      for i = 1 to nodes do
        if 2 * i <= nodes then Buffer.add_string buf (Printf.sprintf "edge(%d,%d).\n" i (2 * i));
        if (2 * i) + 1 <= nodes then
          Buffer.add_string buf (Printf.sprintf "edge(%d,%d).\n" i ((2 * i) + 1))
      done)

(* n x n grid, nodes numbered row-major from 1: edges right and down *)
let grid_edges n =
  buffer_program (fun buf ->
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let id = (i * n) + j + 1 in
          if j < n - 1 then Buffer.add_string buf (Printf.sprintf "edge(%d,%d).\n" id (id + 1));
          if i < n - 1 then Buffer.add_string buf (Printf.sprintf "edge(%d,%d).\n" id (id + n))
        done
      done)

(* move/2 facts along a chain 1 -> 2 -> ... -> n *)
let chain_moves n =
  buffer_program (fun buf ->
      for i = 1 to n - 1 do
        Buffer.add_string buf (Printf.sprintf "move(%d,%d).\n" i (i + 1))
      done)

let left_path_tabled = ":- table path/2.\npath(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), edge(Z,Y).\n"
let right_path_tabled = ":- table path/2.\npath(X,Y) :- edge(X,Y).\npath(X,Y) :- edge(X,Z), path(Z,Y).\n"
let double_path_tabled = ":- table path/2.\npath(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), path(Z,Y).\n"
let left_path_plain = "path(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), edge(Z,Y).\n"
let double_path_plain = "path(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), path(Z,Y).\n"
let right_path_plain = "path(X,Y) :- edge(X,Y).\npath(X,Y) :- edge(X,Z), path(Z,Y).\n"

let sg_program n =
  ":- table sg/2.\n\
   sg(X,Y) :- sib(X,Y).\n\
   sg(X,Y) :- par(X,XP), sg(XP,YP), par(Y,YP).\n\
   sib(X,Y) :- par(X,P), par(Y,P).\n"
  ^ buffer_program (fun buf ->
        for i = 1 to n do
          Buffer.add_string buf (Printf.sprintf "par(%d,%d).\npar(%d,%d).\n" (2 * i) i ((2 * i) + 1) i)
        done)

let sg_datalog n =
  "sg(X,Y) :- sib(X,Y).\n\
   sg(X,Y) :- par(X,XP), sg(XP,YP), par(Y,YP).\n\
   sib(X,Y) :- par(X,P), par(Y,P).\n"
  ^ buffer_program (fun buf ->
        for i = 1 to n do
          Buffer.add_string buf (Printf.sprintf "par(%d,%d).\npar(%d,%d).\n" (2 * i) i ((2 * i) + 1) i)
        done)

let append_program = "app([],L,L).\napp([H|T],L,[H|R]) :- app(T,L,R).\n"
let append_tabled = ":- table app/3.\n" ^ append_program

let int_list n =
  "[" ^ String.concat "," (List.init n (fun i -> string_of_int (i + 1))) ^ "]"

(* the program as data for the SLG meta-interpreter of §3.2 *)
let meta_program n =
  ":- table mi/1.\n\
   mi(G) :- rule(G, B), mi_all(B).\n\
   mi_all([]).\n\
   mi_all([G|R]) :- mi(G), mi_all(R).\n\
   rule(path(X,Y), [edge(X,Y)]).\n\
   rule(path(X,Y), [path(X,Z), edge(Z,Y)]).\n"
  ^ buffer_program (fun buf ->
        for i = 1 to n - 1 do
          Buffer.add_string buf (Printf.sprintf "rule(edge(%d,%d), []).\n" i (i + 1))
        done)

let flat_facts n =
  buffer_program (fun buf ->
      for i = 1 to n do
        Buffer.add_string buf (Printf.sprintf "emp(%d, name_%d, dept_%d, %d).\n" i i (i mod 20) (i * 3))
      done)

let hilog_plain_tc n =
  left_path_tabled ^ chain_edges n

let hilog_encoded_tc n =
  ":- hilog edge.\n\
   :- table apply/3.\n\
   path(G)(X,Y) :- G(X,Y).\n\
   path(G)(X,Y) :- path(G)(X,Z), G(Z,Y).\n"
  ^ chain_edges n
