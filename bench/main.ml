(* The experiment harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md §4 for the index and EXPERIMENTS.md
   for paper-vs-measured numbers).

   Usage: dune exec bench/main.exe                (all experiments)
          dune exec bench/main.exe -- table2 ...  (a subset)
          dune exec bench/main.exe -- quick       (smaller sizes)
          dune exec bench/main.exe -- bechamel    (micro-benchmarks) *)

open Bench_util

let quick = ref false

let fresh_session text =
  let s = Xsb.Session.create () in
  Xsb.Session.consult s text;
  s

(* time a tabled query, resetting table space between runs *)
let time_query ?min_total session query =
  let engine = Xsb.Session.engine session in
  time_per_run ?min_total (fun () ->
      Xsb.Engine.reset_tables engine;
      Xsb.Session.count session query)

(* ------------------------------------------------------------------ *)
(* E1 — Table 2: win/1 over complete binary trees, three negations *)

let table2 () =
  header "Table 2: win/1 over complete binary trees (times normalized to E-neg)";
  let heights = if !quick then [ 6; 7; 8 ] else [ 6; 7; 8; 9; 10; 11 ] in
  row "%-20s" "Height";
  List.iter (fun h -> row "%8d" h) heights;
  row "\n";
  let measure neg h =
    let s = fresh_session (Workloads.win_program ~neg h) in
    (* ratios of small times: measure longer for stability *)
    time_query ~min_total:0.3 s "win(1)"
  in
  let slg = List.map (measure `Tnot) heights in
  let sldnf = List.map (measure `Sldnf) heights in
  let eneg = List.map (measure `Etnot) heights in
  let print_row name values =
    row "%-20s" name;
    List.iter2 (fun v e -> row "%8.2f" (v /. e)) values eneg;
    row "\n"
  in
  print_row "XSB / Default SLG" slg;
  print_row "XSB / SLDNF" sldnf;
  print_row "XSB / E-Neg" eneg;
  row "(paper: SLG ratios grow with height ~4.5 -> 15.7; SLDNF ~0.22-0.3; E-Neg = 1)\n"

(* ------------------------------------------------------------------ *)
(* E2 — Figure 2: SLDNF call counts on binary trees vs the formula G(n) *)

let figure2 () =
  header "Figure 2: calls made by SLDNF win/1 over complete binary trees";
  let formula n =
    (* G(n) = 2^(floor(n/2)+2) - 3 + 2*(n/2 - floor(n/2)), with n such
       that the tree has 2^n - 1 nodes; our height-h tree corresponds to
       the paper's n = h - 1 *)
    let n = n - 1 in
    (1 lsl ((n / 2) + 2)) - 3 + (if n mod 2 = 1 then 1 else 0)
  in
  row "%-10s %-10s %-14s %-14s %-14s\n" "height" "nodes" "SLDNF calls" "formula G" "SLG subgoals";
  List.iter
    (fun h ->
      let s = fresh_session (Workloads.win_program ~neg:`Sldnf h) in
      Xsb.Engine.set_count_calls (Xsb.Session.engine s) true;
      ignore (Xsb.Session.succeeds s "win(1)");
      let calls = Xsb.Engine.call_count (Xsb.Session.engine s) "win" 1 in
      let slg = fresh_session (Workloads.win_program ~neg:`Tnot h) in
      ignore (Xsb.Session.succeeds slg "win(1)");
      let subgoals = (Xsb.Engine.stats (Xsb.Session.engine slg)).Xsb.Machine.st_subgoals - 1 in
      row "%-10d %-10d %-14d %-14d %-14d\n" h ((1 lsl h) - 1) calls (formula h) subgoals)
    (if !quick then [ 4; 5; 6; 7 ] else [ 4; 5; 6; 7; 8; 9; 10 ]);
  row "(paper: 13 of 31 nodes for the 31-node tree; growth ~sqrt(2)^n vs 2^n)\n"

(* ------------------------------------------------------------------ *)
(* E3/E4 — Figure 5: left-recursive path on cycles and fanouts,
   XSB (SLG) vs CORAL-sim (magic + semi-naive) and CORAL-fac *)

let figure5_series ~shape ~sizes =
  row "%-8s %12s %14s %14s %10s %10s\n" "size" "XSB(ms)" "CORAL-def(ms)" "CORAL-fac(ms)" "def/XSB"
    "fac/XSB";
  List.iter
    (fun n ->
      let edges =
        match shape with
        | `Cycle -> Workloads.cycle_edges n
        | `Fanout -> Workloads.fanout_edges n
      in
      let session = fresh_session (Workloads.left_path_tabled ^ edges) in
      let xsb = time_query session "path(1,X)" in
      let clauses = Xsb.Parser.program_of_string (Workloads.left_path_plain ^ edges) in
      let program = Xsb.Datalog.of_clauses clauses in
      let goal () = Xsb.Parser.term_of_string "path(1,X)" in
      let coral_def = time_per_run (fun () -> List.length (Xsb.Magic.answers program (goal ()))) in
      let coral_fac =
        time_per_run (fun () -> List.length (Xsb.Magic.answers ~factor:true program (goal ())))
      in
      row "%-8d %12.3f %14.3f %14.3f %10.2f %10.2f\n" n (ms xsb) (ms coral_def) (ms coral_fac)
        (coral_def /. xsb) (coral_fac /. xsb))
    sizes

let figure5 () =
  header "Figure 5 (left): path/2 over cycles of length 8..2k";
  let sizes = if !quick then [ 8; 64; 256 ] else [ 8; 32; 128; 512; 2048 ] in
  figure5_series ~shape:`Cycle ~sizes;
  header "Figure 5 (right): path/2 over fanout structures";
  figure5_series ~shape:`Fanout ~sizes;
  row "(paper: XSB about an order of magnitude faster than CORAL on both shapes)\n"

(* ------------------------------------------------------------------ *)
(* E5 — Table 3: approximate relative join speeds *)

let table3 () =
  header "Table 3: indexed join of two relations, relative speeds";
  let n = if !quick then 1000 else 4000 in
  let engines =
    [
      ("Quintus-sim (native)", Xsb.Join.prepare_native ~n);
      ("XSB (WAM)", Xsb.Join.prepare_wam ~n);
      ("XSB (SLG interp)", Xsb.Join.prepare_slg ~n);
      ("LDL-sim (interp)", Xsb.Join.prepare_interp ~n);
      ("CORAL-sim (bottomup)", Xsb.Join.prepare_bottomup ~n);
      ("Sybase-sim (paged)", Xsb.Join.prepare_paged ~n);
    ]
  in
  let timings =
    List.map
      (fun (name, thunk) ->
        let time = time_per_run (fun () -> ignore (thunk ())) in
        (name, time))
      engines
  in
  let base = List.fold_left (fun acc (_, t) -> min acc t) infinity timings in
  row "%-24s %12s %10s\n" "engine" "ms/join" "relative";
  List.iter (fun (name, t) -> row "%-24s %12.3f %10.1f\n" name (ms t) (t /. base)) timings;
  row "(paper: Quintus 1, XSB 3, LDL 8, CORAL 24, Sybase 100; n=%d tuples/relation)\n" n

(* ------------------------------------------------------------------ *)
(* E6 — §5 text: right/double recursion and same-generation ratios *)

let section5_ratios () =
  header "Section 5: further XSB vs CORAL-sim ratios";
  let cases =
    [
      ( "right-recursive path, chain 256",
        Workloads.right_path_tabled ^ Workloads.chain_edges 256,
        Workloads.right_path_plain ^ Workloads.chain_edges 256,
        "path(1,X)" );
      ( "double-recursive path, chain 48",
        Workloads.double_path_tabled ^ Workloads.chain_edges 48,
        Workloads.double_path_plain ^ Workloads.chain_edges 48,
        "path(1,X)" );
      ( "same_generation, 127-node tree",
        Workloads.sg_program 63,
        Workloads.sg_datalog 63,
        "sg(64,Y)" );
    ]
  in
  row "%-36s %12s %14s %8s\n" "workload" "XSB(ms)" "CORAL-def(ms)" "ratio";
  List.iter
    (fun (name, tabled_text, datalog_text, query) ->
      let session = fresh_session tabled_text in
      let xsb = time_query session query in
      let program = Xsb.Datalog.of_clauses (Xsb.Parser.program_of_string datalog_text) in
      let goal () = Xsb.Parser.term_of_string query in
      let coral = time_per_run (fun () -> List.length (Xsb.Magic.answers program (goal ()))) in
      row "%-36s %12.3f %14.3f %8.2f\n" name (ms xsb) (ms coral) (coral /. xsb))
    cases;
  row "(paper: \"generally similar ratios\" to Figure 5, i.e. XSB about 10x faster)\n"

(* ------------------------------------------------------------------ *)
(* E7 — §5: append/3 under SLD, SLG and bottom-up; SLG is quadratic *)

let append_bench () =
  header "Section 5: append/3 — SLD vs SLG (table copying) vs CORAL-sim";
  let sizes = if !quick then [ 8; 16; 32 ] else [ 8; 16; 32; 64 ] in
  row "%-8s %10s %10s %10s %14s\n" "length" "SLD(ms)" "SLG(ms)" "SLG/SLD" "CORAL-def(ms)";
  List.iter
    (fun n ->
      let list_n = Workloads.int_list n in
      let query = Printf.sprintf "app(X,Y,%s)" list_n in
      let sld_session = fresh_session Workloads.append_program in
      let sld = time_per_run (fun () -> Xsb.Session.count sld_session query) in
      let slg_session = fresh_session Workloads.append_tabled in
      let slg = time_query slg_session query in
      let program =
        Xsb.Datalog.of_clauses (Xsb.Parser.program_of_string Workloads.append_program)
      in
      let goal () = Xsb.Parser.term_of_string query in
      let coral = time_per_run (fun () -> List.length (Xsb.Magic.answers program (goal ()))) in
      row "%-8d %10.3f %10.3f %10.1f %14.3f\n" n (ms sld) (ms slg) (slg /. sld) (ms coral))
    sizes;
  row "(paper: SLD fastest; SLG quadratic pending table-copy optimizations;\n";
  row " pipelined CORAL overtakes SLG for lists longer than ~10)\n"

(* ------------------------------------------------------------------ *)
(* E8 — §5: SLG at the speed of compiled Prolog; termination on cycles *)

let slg_vs_sld () =
  header "Section 5: left-recursive SLG vs right-recursive SLD (chains and trees)";
  let workloads =
    [
      ("chain 1000", Workloads.chain_edges 1000, "path(1,X)");
      ("binary tree h=10", Workloads.tree_edges 10, "path(1,X)");
    ]
  in
  row "%-20s %14s %14s %10s\n" "structure" "SLD right(ms)" "SLG left(ms)" "SLG/SLD";
  List.iter
    (fun (name, edges, query) ->
      let sld_session = fresh_session (Workloads.right_path_plain ^ edges) in
      let sld = time_per_run (fun () -> Xsb.Session.count sld_session query) in
      let slg_session = fresh_session (Workloads.left_path_tabled ^ edges) in
      let slg = time_query slg_session query in
      row "%-20s %14.3f %14.3f %10.2f\n" name (ms sld) (ms slg) (slg /. sld))
    workloads;
  (* termination demonstration *)
  let looping = fresh_session (Workloads.right_path_plain ^ Workloads.cycle_edges 10) in
  Xsb.Engine.set_max_steps (Xsb.Session.engine looping) 200_000;
  (match Xsb.Session.query looping "path(1,X)" with
  | exception Xsb.Machine.Step_limit ->
      row "SLD on a 10-cycle:   does not terminate (stopped at the step limit)\n"
  | _ -> row "SLD on a 10-cycle:   unexpectedly terminated?!\n");
  let tabled = fresh_session (Workloads.left_path_tabled ^ Workloads.cycle_edges 10) in
  row "SLG on a 10-cycle:   terminates with %d answers\n" (Xsb.Session.count tabled "path(1,X)");
  row "(paper: SLG left recursion takes ~20-25%% longer than SLD right recursion)\n"

(* ------------------------------------------------------------------ *)
(* E9 — §3.2: the engine vs an SLG meta-interpreter running on it *)

let meta_overhead () =
  header "Section 3.2: SLG engine vs SLG meta-interpreter (on the engine)";
  let n = if !quick then 48 else 96 in
  let direct_session = fresh_session (Workloads.left_path_tabled ^ Workloads.chain_edges n) in
  let direct = time_query direct_session "path(1,X)" in
  let meta_session = fresh_session (Workloads.meta_program n) in
  let meta = time_query meta_session "mi(path(1,X))" in
  row "direct engine:     %10.3f ms\n" (ms direct);
  row "meta-interpreter:  %10.3f ms\n" (ms meta);
  row "slowdown:          %10.1fx\n" (meta /. direct);
  row "(paper: the SLG-WAM is roughly 100x faster than its meta-interpreter)\n"

(* ------------------------------------------------------------------ *)
(* E10 — §3.2: SLD-only overhead of the tabling engine; WAM comparison *)

let sld_overhead () =
  header "Section 3.2: executing plain SLD on the tabling engine vs the WAM";
  let text =
    Workloads.append_program ^ "nrev([],[]).\nnrev([H|T],R) :- nrev(T,RT), app(RT,[H],R).\n"
  in
  let list_n = Workloads.int_list 40 in
  let query = Printf.sprintf "nrev(%s, R)" list_n in
  let session = fresh_session text in
  let slg_as_sld = time_per_run (fun () -> Xsb.Session.count session query) in
  (* same database compiled to WAM code *)
  let machine = Xsb.Wam.create (Xsb.Wam.of_database (Xsb.Session.db session)) in
  let goal = Xsb.Parser.term_of_string query in
  let wam = time_per_run (fun () -> Xsb.Wam.count_solutions machine goal) in
  row "SLG interpreter (SLD only): %10.3f ms\n" (ms slg_as_sld);
  row "WAM byte-code emulator:     %10.3f ms\n" (ms wam);
  row "interpreter/WAM:            %10.2fx\n" (slg_as_sld /. wam);
  (* the tabling-machinery overhead claim: same engine, tabling on vs off *)
  let chain = Workloads.right_path_plain ^ Workloads.chain_edges 400 in
  let s1 = fresh_session chain in
  let with_checks = time_per_run (fun () -> Xsb.Session.count s1 "path(1,X)") in
  Xsb.Engine.set_tabling (Xsb.Session.engine s1) false;
  let without = time_per_run (fun () -> Xsb.Session.count s1 "path(1,X)") in
  row "tabling checks on vs off:   %10.2f%% overhead\n"
    (100.0 *. ((with_checks /. without) -. 1.0));
  row "(paper: the SLG-WAM is usually less than 10%% slower than the WAM it extends)\n"

(* ------------------------------------------------------------------ *)
(* E11 — §4.6: loading through the reader, formatted read, object files *)

let load_speeds () =
  header "Section 4.6: data loading paths";
  let n = if !quick then 10_000 else 40_000 in
  let text = Workloads.flat_facts n in
  let reader =
    snd
      (time_once (fun () ->
           let db = Xsb.Database.create () in
           ignore (Xsb.Loader.consult_string db text)))
  in
  let formatted, db_loaded =
    let db = Xsb.Database.create () in
    let _, t = time_once (fun () -> ignore (Xsb.Fast_load.string_ db text)) in
    (t, db)
  in
  let path = Filename.temp_file "bench" ".xwam" in
  Xsb.Obj_file.save_all db_loaded path;
  let objfile =
    snd
      (time_once (fun () ->
           let db = Xsb.Database.create () in
           ignore (Xsb.Obj_file.load db path)))
  in
  Sys.remove path;
  (* byte-code object files: compiled code with its switch tables *)
  let wam_path = Filename.temp_file "bench" ".xwam" in
  Xsb.Wam_image.save (Xsb.Wam.of_database db_loaded) wam_path;
  let wam_image = snd (time_once (fun () -> ignore (Xsb.Wam_image.load wam_path))) in
  Sys.remove wam_path;
  row "general reader:     %8.1f ms  (%6.1f us/fact)\n" (ms reader)
    (1e6 *. reader /. float_of_int n);
  row "formatted read:     %8.1f ms  (%6.1f us/fact)  %5.1fx faster than the reader\n"
    (ms formatted)
    (1e6 *. formatted /. float_of_int n)
    (reader /. formatted);
  row "dynamic-code image: %8.1f ms  (%6.1f us/fact)  %5.1fx vs formatted read\n" (ms objfile)
    (1e6 *. objfile /. float_of_int n)
    (formatted /. objfile);
  row "byte-code object:   %8.1f ms  (%6.1f us/fact)  %5.1fx faster than formatted read\n"
    (ms wam_image)
    (1e6 *. wam_image /. float_of_int n)
    (formatted /. wam_image);
  row "(paper: the general reader is the slowest; object files load ~12x faster\n";
  row " than formatted read+assert)\n"

(* ------------------------------------------------------------------ *)
(* E12 — §4.7 and Figures 3/4: HiLog overhead and first-string indexing *)

let hilog_overhead () =
  header "Section 4.7: HiLog overhead (first-order vs apply-encoded vs specialized)";
  let n = if !quick then 100 else 300 in
  let fo_session = fresh_session (Workloads.hilog_plain_tc n) in
  let fo = time_query fo_session "path(1,X)" in
  let hl_session = fresh_session (Workloads.hilog_encoded_tc n) in
  let hl = time_query hl_session "path(edge)(1,X)" in
  (* specialized as the paper prescribes (§4.7 + Figure 4): the known
     calls go to apply_path_1/3 (the only tabled predicate), and the
     remaining apply/3 fact lookups are discriminated by first-string
     indexing *)
  let spec_session =
    let s = Xsb.Session.create () in
    let db = Xsb.Session.db s in
    Xsb.Database.declare_hilog db "edge";
    let clauses =
      List.map (Xsb.Database.encode db)
        (Xsb.Parser.program_of_string
           "path(G)(X,Y) :- G(X,Y).\npath(G)(X,Y) :- path(G)(X,Z), G(Z,Y).")
    in
    List.iter
      (fun c -> ignore (Xsb.Database.add_clause db c))
      (Xsb.Hilog_specialize.specialize clauses);
    Xsb.Pred.set_tabled
      (Xsb.Database.declare db (Xsb.Hilog_specialize.specialized_name "path" 1 2) 3)
      true;
    Xsb.Session.consult s (Workloads.chain_edges n);
    Xsb.Pred.set_index (Xsb.Database.declare db "apply" 3) Xsb.Pred.First_string_index;
    s
  in
  let sp = time_query spec_session "path(edge)(1,X)" in
  row "first-order path/2:           %10.3f ms\n" (ms fo);
  row "HiLog via tabled apply/3:     %10.3f ms  (%.2fx)\n" (ms hl) (hl /. fo);
  row "HiLog specialized + f-s idx:  %10.3f ms  (%.2fx)\n" (ms sp) (sp /. fo);
  row "(paper: specialized HiLog predicates execute only marginally slower\n";
  row " than first-order ones; indexing solved by first-string tries, Fig. 4)\n";

  header "Figures 3/4: first-string indexing vs first-argument hashing";
  let k = if !quick then 400 else 2000 in
  let clauses =
    String.concat "\n" (List.init k (fun i -> Printf.sprintf "p(g(%d), f(%d))." i i))
  in
  let hash_session = fresh_session clauses in
  (* first-argument hashing cannot discriminate below g/1: every lookup
     scans all k clauses *)
  let hash_time =
    time_per_run (fun () ->
        Xsb.Session.count hash_session (Printf.sprintf "p(g(%d), X)" (k / 2)))
  in
  let trie_session = fresh_session (":- index(p/2, str).\n" ^ clauses) in
  let trie_time =
    time_per_run (fun () ->
        Xsb.Session.count trie_session (Printf.sprintf "p(g(%d), X)" (k / 2)))
  in
  row "first-arg hash lookup:   %10.4f ms (all %d clauses share the symbol g/1)\n" (ms hash_time) k;
  row "first-string trie:       %10.4f ms  (%.0fx faster)\n" (ms trie_time)
    (hash_time /. trie_time);
  row "(paper §4.5: hash indexing uses only the outer symbol; first-string\n";
  row " indexing discriminates the full prefix, as in Figure 3)\n"

(* ------------------------------------------------------------------ *)
(* E13 — §4.5: answer-table indexing — bound calls on completed tables *)

let answer_index () =
  header "Section 4.5: trie answer index — candidates vs full table size";
  let snapshot (st : Xsb.Machine.stats) =
    ( st.Xsb.Machine.st_answer_probes,
      st.Xsb.Machine.st_answer_candidates,
      st.Xsb.Machine.st_answer_full_size,
      st.Xsb.Machine.st_subsumed_calls )
  in
  let run name text open_q bound_q =
    let s = fresh_session text in
    (* complete the open table first; the bound call then consumes it
       through the answer index instead of re-running the program *)
    ignore (Xsb.Session.count s open_q);
    let p0, c0, f0, s0 = snapshot (Xsb.Session.stats s) in
    let answers = Xsb.Session.count s bound_q in
    let p1, c1, f1, s1 = snapshot (Xsb.Session.stats s) in
    row "%-28s %8d %8d %12d %10d %9d\n" name answers (p1 - p0) (c1 - c0) (f1 - f0) (s1 - s0)
  in
  row "%-28s %8s %8s %12s %10s %9s\n" "workload" "answers" "probes" "candidates" "fullscan"
    "subsumed";
  let n = if !quick then 32 else 128 in
  run
    (Printf.sprintf "tc cycle %d: path(1,X)" n)
    (Workloads.left_path_tabled ^ Workloads.cycle_edges n)
    "path(X,Y)" "path(1,X)";
  run "sg tree h=6: sg(64,Y)" (Workloads.sg_program 63) "sg(X,Y)" "sg(64,Y)";
  let cyc = fresh_session (Workloads.left_path_tabled ^ Workloads.cycle_edges n) in
  ignore (Xsb.Session.count cyc "path(1,X)");
  let st = Xsb.Session.stats cyc in
  row "drain dedup on tc cycle %d: %d drains scheduled for %d answers x %d consumers\n" n
    st.Xsb.Machine.st_drains_scheduled st.Xsb.Machine.st_answers st.Xsb.Machine.st_suspensions;
  row "(bound calls consume the completed open table through the trie index:\n";
  row " candidates stay near the matching-answer count, far below full size)\n"

(* ------------------------------------------------------------------ *)
(* E14 — local vs batched scheduling across tc / sg / win workloads *)

let scheduling () =
  header "Scheduling strategies: local (SCC-at-a-time) vs batched (eager drain)";
  let tc = Workloads.left_path_tabled in
  let win = ":- table win/1.\nwin(X) :- move(X,Y), tnot(win(Y)).\n" in
  let cases =
    if !quick then
      [
        ("tc chain 128", tc ^ Workloads.chain_edges 128, "path(1,X)");
        ("tc cycle 128", tc ^ Workloads.cycle_edges 128, "path(1,X)");
        ("tc grid 8x8", tc ^ Workloads.grid_edges 8, "path(1,X)");
        ("sg tree h=5", Workloads.sg_program 31, "sg(32,Y)");
        ("win chain 128", win ^ Workloads.chain_moves 128, "win(1)");
        ("win tree h=7", win ^ Workloads.binary_tree_moves 7, "win(1)");
      ]
    else
      [
        ("tc chain 512", tc ^ Workloads.chain_edges 512, "path(1,X)");
        ("tc cycle 512", tc ^ Workloads.cycle_edges 512, "path(1,X)");
        ("tc grid 16x16", tc ^ Workloads.grid_edges 16, "path(1,X)");
        ("sg tree h=6", Workloads.sg_program 63, "sg(64,Y)");
        ("win chain 256", win ^ Workloads.chain_moves 256, "win(1)");
        ("win tree h=9", win ^ Workloads.binary_tree_moves 9, "win(1)");
      ]
  in
  let time_with strategy text query =
    let s = Xsb.Session.create ~scheduling:strategy () in
    Xsb.Session.consult s text;
    time_query s query
  in
  let scc_stats text query =
    let s = Xsb.Session.create ~scheduling:Xsb.Machine.Local () in
    Xsb.Session.consult s text;
    ignore (Xsb.Session.count s query);
    Xsb.Session.stats s
  in
  row "%-18s %12s %12s %12s %8s %8s\n" "workload" "batched(ms)" "local(ms)" "local/batch" "sccs"
    "max-scc";
  let results =
    List.map
      (fun (name, text, query) ->
        let batched = time_with Xsb.Machine.Batched text query in
        let local = time_with Xsb.Machine.Local text query in
        let st = scc_stats text query in
        row "%-18s %12.3f %12.3f %12.2f %8d %8d\n" name (ms batched) (ms local)
          (local /. batched) st.Xsb.Machine.st_sccs_completed st.Xsb.Machine.st_max_scc_size;
        (name, batched, local, st))
      cases
  in
  let oc = open_out "BENCH_scheduling.json" in
  output_string oc "{ \"experiment\": \"scheduling\", \"unit\": \"ms\", \"results\": [\n";
  List.iteri
    (fun i (name, batched, local, (st : Xsb.Machine.stats)) ->
      Printf.fprintf oc
        "  { \"workload\": %S, \"batched_ms\": %.4f, \"local_ms\": %.4f, \"local_over_batched\": \
         %.4f, \"sccs_completed\": %d, \"early_completions\": %d, \"max_scc_size\": %d }%s\n"
        name (ms batched) (ms local) (local /. batched) st.Xsb.Machine.st_sccs_completed
        st.Xsb.Machine.st_early_completions st.Xsb.Machine.st_max_scc_size
        (if i = List.length results - 1 then "" else ","))
    results;
  output_string oc "] }\n";
  close_out oc;
  row "wrote BENCH_scheduling.json\n";
  (* per-run --profile snapshots next to the timing JSON: a separate
     profiled run per workload per strategy (profiling is off during the
     timed runs above, so it cannot distort them) *)
  let profile_run strategy text query =
    let s = Xsb.Session.create ~scheduling:strategy () in
    Xsb.Session.set_profiling s true;
    Xsb.Session.consult s text;
    ignore (Xsb.Session.count s query);
    Xsb.Obs.Metrics.report_to_json (Xsb.Session.metrics s)
  in
  let oc = open_out "BENCH_scheduling_profile.json" in
  output_string oc "{ \"experiment\": \"scheduling-profile\", \"runs\": [\n";
  List.iteri
    (fun i (name, text, query) ->
      List.iteri
        (fun j (strategy_name, strategy) ->
          Printf.fprintf oc "  { \"workload\": %S, \"scheduling\": %S, \"profile\": %s }%s\n" name
            strategy_name
            (Xsb.Json.to_string (profile_run strategy text query))
            (if i = List.length cases - 1 && j = 1 then "" else ","))
        [ ("batched", Xsb.Machine.Batched); ("local", Xsb.Machine.Local) ])
    cases;
  output_string oc "] }\n";
  close_out oc;
  row "wrote BENCH_scheduling_profile.json\n"

(* ------------------------------------------------------------------ *)
(* E14 — the query service under concurrent load (paper §4: XSB as a
   data server). An in-process server on an ephemeral port, N client
   threads each driving one connection: per-request ABOLISH+QUERY
   round-trips (so every query re-derives its table), latency
   percentiles and aggregate throughput. *)

(* quantiles come from the same log-bucketed histogram the server's
   METRICS exposition uses, so bench JSON and scraped
   histogram_quantile agree on the math *)
let latency_hist latencies =
  let h = Xsb.Metrics.Histogram.create () in
  Array.iter (Xsb.Metrics.Histogram.observe h) latencies;
  h

let server_bench () =
  header "Server: concurrent clients over loopback TCP";
  let open Xsb_server in
  let clients = if !quick then 4 else 8 in
  let requests = if !quick then 25 else 100 in
  let workloads =
    [
      ("tc-cycle-64", Workloads.left_path_tabled ^ Workloads.cycle_edges 64, "path(1,X)", 64);
      ("tc-chain-128", Workloads.left_path_tabled ^ Workloads.chain_edges 128, "path(1,X)", 127);
      ("sg-24", Workloads.sg_program 24, "sg(1,X)", -1);
    ]
  in
  row "%-14s %8s %10s %10s %10s %10s %12s\n" "workload" "clients" "p50(us)" "p95(us)" "p99(us)"
    "max(us)" "req/s";
  let results =
    List.map
      (fun (name, program, goal, expected) ->
        let cfg =
          {
            Server.default_config with
            port = 0;
            workers = clients;
            queue_capacity = 4 * clients;
            default_timeout_ms = 60_000;
            default_max_steps = 0;
          }
        in
        let server = Server.start cfg in
        let latencies = Array.make (clients * requests) 0.0 in
        let errors = Atomic.make 0 in
        let run c_idx () =
          let c = Client.connect (Server.port server) in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              (match Client.consult c program with
              | Ok _ -> ()
              | Error _ -> Atomic.incr errors);
              for r = 0 to requests - 1 do
                let t0 = Unix.gettimeofday () in
                (match Client.abolish c with Ok _ -> () | Error _ -> Atomic.incr errors);
                (match Client.query c goal with
                | Client.Rows { rows; _ } ->
                    if expected >= 0 && List.length rows <> expected then Atomic.incr errors
                | Client.Query_timeout _ | Client.Query_error _ -> Atomic.incr errors);
                latencies.((c_idx * requests) + r) <- Unix.gettimeofday () -. t0
              done)
        in
        let t0 = Unix.gettimeofday () in
        let threads = List.init clients (fun i -> Thread.create (run i) ()) in
        List.iter Thread.join threads;
        let wall = Unix.gettimeofday () -. t0 in
        Server.stop server;
        if Atomic.get errors > 0 then
          row "  !! %d failed requests in %s\n" (Atomic.get errors) name;
        let hist = latency_hist latencies in
        let total = clients * requests in
        let us p = 1e6 *. Xsb.Metrics.Histogram.percentile hist p in
        let throughput = float_of_int total /. wall in
        row "%-14s %8d %10.0f %10.0f %10.0f %10.0f %12.0f\n" name clients (us 50.0) (us 95.0)
          (us 99.0) (us 100.0) throughput;
        (name, wall, throughput, us 50.0, us 95.0, us 99.0, us 100.0))
      workloads
  in
  let oc = open_out "BENCH_server.json" in
  Printf.fprintf oc
    "{ \"experiment\": \"server\", \"clients\": %d, \"requests_per_client\": %d, \"results\": [\n"
    clients requests;
  List.iteri
    (fun i (name, wall, throughput, p50, p95, p99, pmax) ->
      Printf.fprintf oc
        "  { \"workload\": %S, \"wall_s\": %.4f, \"throughput_rps\": %.1f, \"p50_us\": %.1f, \
         \"p95_us\": %.1f, \"p99_us\": %.1f, \"max_us\": %.1f }%s\n"
        name wall throughput p50 p95 p99 pmax
        (if i = List.length results - 1 then "" else ","))
    results;
  output_string oc "] }\n";
  close_out oc;
  row "wrote BENCH_server.json\n"

(* ------------------------------------------------------------------ *)
(* E15 — the cost of observability: tc-cycle-64 under concurrent load
   against a server with the metrics registry disabled (the control)
   and enabled while a scraper thread hits METRICS continuously; the
   overhead is measured, not assumed. *)

let metrics_bench () =
  header "Metrics: instrumentation overhead under load (tc-cycle-64)";
  let open Xsb_server in
  let clients = if !quick then 4 else 8 in
  let requests = if !quick then 25 else 100 in
  let program = Workloads.left_path_tabled ^ Workloads.cycle_edges 64 in
  let goal = "path(1,X)" in
  let expected = 64 in
  let drive ~metrics_enabled ~scrape =
    let cfg =
      {
        Server.default_config with
        port = 0;
        workers = clients;
        queue_capacity = 4 * clients;
        default_timeout_ms = 60_000;
        default_max_steps = 0;
        metrics_enabled;
      }
    in
    let server = Server.start cfg in
    let latencies = Array.make (clients * requests) 0.0 in
    let errors = Atomic.make 0 in
    let scrapes = Atomic.make 0 in
    let bad_scrapes = Atomic.make 0 in
    let stop_scraper = Atomic.make false in
    let scraper =
      if not scrape then None
      else
        Some
          (Thread.create
             (fun () ->
               let c = Client.connect (Server.port server) in
               Fun.protect
                 ~finally:(fun () -> Client.close c)
                 (fun () ->
                   while not (Atomic.get stop_scraper) do
                     (match Client.metrics c with
                     | Ok text -> (
                         Atomic.incr scrapes;
                         match Xsb.Metrics.Exposition.validate text with
                         | Ok _ -> ()
                         | Error _ -> Atomic.incr bad_scrapes)
                     | Error _ -> Atomic.incr errors);
                     (* a continuous scraper, but at a realistic cadence *)
                     Thread.delay 0.1
                   done))
             ())
    in
    let run c_idx () =
      let c = Client.connect (Server.port server) in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (match Client.consult c program with Ok _ -> () | Error _ -> Atomic.incr errors);
          for r = 0 to requests - 1 do
            let t0 = Xsb.Mclock.now () in
            (match Client.abolish c with Ok _ -> () | Error _ -> Atomic.incr errors);
            (match Client.query c goal with
            | Client.Rows { rows; _ } ->
                if List.length rows <> expected then Atomic.incr errors
            | Client.Query_timeout _ | Client.Query_error _ -> Atomic.incr errors);
            latencies.((c_idx * requests) + r) <- Xsb.Mclock.now () -. t0
          done)
    in
    let t0 = Xsb.Mclock.now () in
    let threads = List.init clients (fun i -> Thread.create (run i) ()) in
    List.iter Thread.join threads;
    let wall = Xsb.Mclock.now () -. t0 in
    Atomic.set stop_scraper true;
    (match scraper with Some th -> Thread.join th | None -> ());
    Server.stop server;
    if Atomic.get errors > 0 then row "  !! %d failed requests\n" (Atomic.get errors);
    if Atomic.get bad_scrapes > 0 then
      row "  !! %d invalid METRICS expositions\n" (Atomic.get bad_scrapes);
    let hist = latency_hist latencies in
    let throughput = float_of_int (clients * requests) /. wall in
    (throughput, hist, Atomic.get scrapes)
  in
  row "%-26s %8s %10s %10s %12s\n" "configuration" "clients" "p50(us)" "p95(us)" "req/s";
  let report name (throughput, hist, _) =
    let us p = 1e6 *. Xsb.Metrics.Histogram.percentile hist p in
    row "%-26s %8d %10.0f %10.0f %12.0f\n" name clients (us 50.0) (us 95.0) throughput
  in
  let base = drive ~metrics_enabled:false ~scrape:false in
  report "metrics-off (control)" base;
  let instr = drive ~metrics_enabled:true ~scrape:true in
  report "metrics-on + scraper" instr;
  let (base_rps, base_hist, _) = base and instr_rps, instr_hist, scrapes = instr in
  let overhead_pct = 100.0 *. (base_rps -. instr_rps) /. base_rps in
  row "overhead: %.2f%% of throughput (%d scrapes served during the run)\n" overhead_pct scrapes;
  let oc = open_out "BENCH_metrics.json" in
  let us h p = 1e6 *. Xsb.Metrics.Histogram.percentile h p in
  Printf.fprintf oc
    "{ \"experiment\": \"metrics\", \"workload\": \"tc-cycle-64\", \"clients\": %d, \
     \"requests_per_client\": %d,\n\
    \  \"baseline\": { \"throughput_rps\": %.1f, \"p50_us\": %.1f, \"p95_us\": %.1f, \
     \"p99_us\": %.1f },\n\
    \  \"instrumented\": { \"throughput_rps\": %.1f, \"p50_us\": %.1f, \"p95_us\": %.1f, \
     \"p99_us\": %.1f, \"scrapes\": %d },\n\
    \  \"overhead_pct\": %.2f }\n"
    clients requests base_rps (us base_hist 50.0) (us base_hist 95.0) (us base_hist 99.0)
    instr_rps (us instr_hist 50.0) (us instr_hist 95.0) (us instr_hist 99.0) scrapes
    overhead_pct;
  close_out oc;
  row "wrote BENCH_metrics.json\n"

(* ------------------------------------------------------------------ *)
(* Journal: ASSERT throughput per sync policy; recovery time vs size *)

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let journal_dir_counter = ref 0

let with_journal_dir f =
  incr journal_dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "xsb_bench_journal_%d_%d" (Unix.getpid ()) !journal_dir_counter)
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let journal_fill db pred n =
  for k = 1 to n do
    ignore
      (Xsb.Database.insert_clause db pred
         ~head:(Xsb.Term.Struct ("edge", [| Xsb.Term.Int k; Xsb.Term.Int (k + 1) |]))
         ~body:(Xsb.Term.Atom "true"))
  done

let journal_bench () =
  header "Journal: ASSERT throughput per sync policy; recovery time vs journal size";
  let bulk = if !quick then 5_000 else 20_000 in
  let policies =
    [
      ("never", Xsb.Journal.Never, bulk);
      ("interval=64", Xsb.Journal.Interval 64, bulk);
      ("always", Xsb.Journal.Always, if !quick then 100 else 500);
    ]
  in
  row "%-14s %10s %12s %14s %10s\n" "sync" "records" "wall_s" "records/s" "fsyncs";
  let throughput =
    List.map
      (fun (name, policy, n) ->
        with_journal_dir (fun dir ->
            let db = Xsb.Database.create () in
            let pred = Xsb.Database.set_dynamic db "edge" 2 in
            let j = Xsb.Journal.open_ { (Xsb.Journal.default_config ~dir) with Xsb.Journal.sync = policy; compact_bytes = 0 } db in
            Xsb.Journal.attach j;
            let t0 = Unix.gettimeofday () in
            journal_fill db pred n;
            Xsb.Journal.sync j;
            let wall = Unix.gettimeofday () -. t0 in
            let fsyncs = (Xsb.Journal.stats j).Xsb.Journal.fsyncs in
            Xsb.Journal.close j;
            let rps = float_of_int n /. wall in
            row "%-14s %10d %12.4f %14.0f %10d\n" name n wall rps fsyncs;
            (name, n, wall, rps, fsyncs)))
      policies
  in
  (* group commit: writers × records-per-commit. Each writer thread
     appends [per]-record transactions (append_batch) and blocks on the
     commit barrier, so the committer amortizes one fsync over every
     record in flight. The headline (8 writers × 4 records) is gated at
     >= 10x the sync=always single-writer baseline above. *)
  let always_rps =
    match List.find_opt (fun (name, _, _, _, _) -> name = "always") throughput with
    | Some (_, _, _, rps, _) -> rps
    | None -> 1.0
  in
  let edge_mut k =
    Xsb.Journal.Add_clause
      {
        name = "edge";
        arity = 2;
        front = false;
        dynamic = true;
        clause =
          Xsb.Canon.of_term
            (Xsb.Term.Struct
               ( ":-",
                 [|
                   Xsb.Term.Struct ("edge", [| Xsb.Term.Int k; Xsb.Term.Int (k + 1) |]);
                   Xsb.Term.Atom "true";
                 |] ));
      }
  in
  row "%-14s %8s %10s %10s %12s %14s %10s %8s\n" "sync" "writers" "per_commit" "records"
    "wall_s" "records/s" "fsyncs" "vs_always";
  let group_sweep =
    List.map
      (fun (window_us, writers, per) ->
        with_journal_dir (fun dir ->
            let db = Xsb.Database.create () in
            let j =
              Xsb.Journal.open_
                {
                  (Xsb.Journal.default_config ~dir) with
                  Xsb.Journal.sync = Xsb.Journal.Group { window_us; max_batch = 256 };
                  compact_bytes = 0;
                }
                db
            in
            let rounds = (if !quick then 512 else 8192) / (writers * per) in
            let n = writers * per * rounds in
            let t0 = Unix.gettimeofday () in
            let threads =
              List.init writers (fun w ->
                  Thread.create
                    (fun () ->
                      for r = 0 to rounds - 1 do
                        let base = ((w * rounds) + r) * per in
                        Xsb.Journal.append_batch j (List.init per (fun k -> edge_mut (base + k)))
                      done)
                    ())
            in
            List.iter Thread.join threads;
            let wall = Unix.gettimeofday () -. t0 in
            let fsyncs = (Xsb.Journal.stats j).Xsb.Journal.fsyncs in
            Xsb.Journal.close j;
            let rps = float_of_int n /. wall in
            let label = Printf.sprintf "group=%.1fms" (float_of_int window_us /. 1000.0) in
            row "%-14s %8d %10d %10d %12.4f %14.0f %10d %7.1fx\n" label writers per n wall rps
              fsyncs (rps /. always_rps);
            (window_us, writers, per, n, wall, rps, fsyncs, rps /. always_rps)))
      [ (200, 1, 1); (200, 1, 4); (200, 8, 1); (200, 8, 4); (200, 8, 8); (1000, 8, 8) ]
  in
  let sizes = if !quick then [ 1_000; 5_000 ] else [ 1_000; 10_000; 50_000 ] in
  row "%-14s %12s %14s\n" "records" "recovery_s" "records/s";
  let recovery =
    List.map
      (fun n ->
        with_journal_dir (fun dir ->
            let db = Xsb.Database.create () in
            let pred = Xsb.Database.set_dynamic db "edge" 2 in
            let cfg = { (Xsb.Journal.default_config ~dir) with Xsb.Journal.sync = Xsb.Journal.Never; compact_bytes = 0 } in
            let j = Xsb.Journal.open_ cfg db in
            Xsb.Journal.attach j;
            journal_fill db pred n;
            Xsb.Journal.close j;
            let db2 = Xsb.Database.create () in
            let t0 = Unix.gettimeofday () in
            let j2 = Xsb.Journal.open_ cfg db2 in
            let wall = Unix.gettimeofday () -. t0 in
            let recovered = (Xsb.Journal.stats j2).Xsb.Journal.recovered_records in
            Xsb.Journal.close j2;
            row "%-14d %12.4f %14.0f\n" recovered wall (float_of_int recovered /. wall);
            (recovered, wall)))
      sizes
  in
  let oc = open_out "BENCH_journal.json" in
  output_string oc "{ \"experiment\": \"journal\", \"throughput\": [\n";
  List.iteri
    (fun i (name, n, wall, rps, fsyncs) ->
      Printf.fprintf oc
        "  { \"sync\": %S, \"records\": %d, \"wall_s\": %.4f, \"records_per_s\": %.1f, \
         \"fsyncs\": %d }%s\n"
        name n wall rps fsyncs
        (if i = List.length throughput - 1 then "" else ","))
    throughput;
  output_string oc "], \"group_commit\": [\n";
  List.iteri
    (fun i (window_us, writers, per, n, wall, rps, fsyncs, speedup) ->
      Printf.fprintf oc
        "  { \"sync\": \"group\", \"window_ms\": %.1f, \"writers\": %d, \"per_commit\": %d, \
         \"records\": %d, \"wall_s\": %.4f, \"records_per_s\": %.1f, \"fsyncs\": %d, \
         \"speedup_vs_always\": %.1f }%s\n"
        (float_of_int window_us /. 1000.0)
        writers per n wall rps fsyncs speedup
        (if i = List.length group_sweep - 1 then "" else ","))
    group_sweep;
  output_string oc "], \"recovery\": [\n";
  List.iteri
    (fun i (n, wall) ->
      Printf.fprintf oc "  { \"records\": %d, \"recovery_s\": %.4f }%s\n" n wall
        (if i = List.length recovery - 1 then "" else ","))
    recovery;
  output_string oc "] }\n";
  close_out oc;
  row "wrote BENCH_journal.json\n"

(* ------------------------------------------------------------------ *)
(* Replication: standby lag vs sustained write rate. A primary journal
   under group commit feeds an in-process standby over the real wire
   protocol; a paced writer holds each target rate for a fixed window
   while the standby's byte lag is sampled, then the time for the lag
   to drain to zero once writes stop is measured. *)

let repl_bench () =
  header "Replication: standby lag vs write rate";
  (* socket writes to a departing peer must surface as EPIPE, not kill
     the bench (the server binary does the same) *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let edge_mut k =
    Xsb.Journal.Add_clause
      {
        name = "edge";
        arity = 2;
        front = false;
        dynamic = true;
        clause =
          Xsb.Canon.of_term
            (Xsb.Term.Struct
               ( ":-",
                 [|
                   Xsb.Term.Struct ("edge", [| Xsb.Term.Int k; Xsb.Term.Int (k + 1) |]);
                   Xsb.Term.Atom "true";
                 |] ));
      }
  in
  let open_primary pdir =
    let pdb = Xsb.Database.create () in
    let j =
      Xsb.Journal.open_
        {
          (Xsb.Journal.default_config ~dir:pdir) with
          Xsb.Journal.sync = Xsb.Journal.default_group;
          compact_bytes = 0;
        }
        pdb
    in
    (j, Xsb_repl.Repl.Primary.start ~port:0 ~journal:j ())
  in
  (* the standby mirrors into [sdir]; unlike the primary's
     Journal.open_, Standby.start expects it to exist *)
  let start_standby j primary sdir =
    (try Unix.mkdir sdir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let sdb = Xsb.Database.create () in
    Xsb_repl.Repl.Standby.start ~primary_host:"127.0.0.1"
      ~primary_port:(Xsb_repl.Repl.Primary.port primary)
      ~dir:sdir ~generation:1L ~offset:Xsb.Journal.header_len ~epoch:(Xsb.Journal.epoch j)
      ~keep_generations:0
      ~apply:(fun m -> Xsb.Journal.apply_mutation sdb m)
      ()
  in
  let standby_lag j standby =
    let s = Xsb_repl.Repl.Standby.status standby in
    let pgen, poff = Xsb.Journal.durable_position j in
    if Int64.equal s.Xsb_repl.Repl.Standby.generation pgen then
      max 0 (poff - s.Xsb_repl.Repl.Standby.applied_off)
    else max 1 s.Xsb_repl.Repl.Standby.lag_bytes
  in
  (* --- lag vs sustained write rate, one standby --- *)
  let rates = if !quick then [ 500; 2_000 ] else [ 500; 2_000; 8_000 ] in
  let window_s = if !quick then 0.5 else 1.0 in
  row "%-12s %10s %14s %14s %12s\n" "rate_rec_s" "records" "max_lag_B" "mean_lag_B" "catchup_ms";
  let results =
    List.map
      (fun rate ->
        with_journal_dir (fun pdir ->
            with_journal_dir (fun sdir ->
                let j, primary = open_primary pdir in
                let standby = start_standby j primary sdir in
                let lag () = standby_lag j standby in
                (* paced writes: batches of 4, spaced to hold the rate *)
                let per = 4 in
                let interval = float_of_int per /. float_of_int rate in
                let deadline = Unix.gettimeofday () +. window_s in
                let written = ref 0 in
                let max_lag = ref 0 and lag_sum = ref 0 and samples = ref 0 in
                let next = ref (Unix.gettimeofday ()) in
                while Unix.gettimeofday () < deadline do
                  Xsb.Journal.append_batch j (List.init per (fun k -> edge_mut (!written + k)));
                  written := !written + per;
                  let l = lag () in
                  max_lag := max !max_lag l;
                  lag_sum := !lag_sum + l;
                  incr samples;
                  next := !next +. interval;
                  let now = Unix.gettimeofday () in
                  if !next > now then Thread.delay (!next -. now) else next := now
                done;
                (* writes stop: time the drain to zero *)
                let t0 = Unix.gettimeofday () in
                while lag () > 0 && Unix.gettimeofday () -. t0 < 30.0 do
                  Thread.delay 0.002
                done;
                let catchup_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
                Xsb_repl.Repl.Standby.stop standby;
                Xsb_repl.Repl.Primary.stop primary;
                Xsb.Journal.close j;
                let mean_lag =
                  if !samples = 0 then 0.0 else float_of_int !lag_sum /. float_of_int !samples
                in
                row "%-12d %10d %14d %14.0f %12.1f\n" rate !written !max_lag mean_lag catchup_ms;
                (rate, !written, !max_lag, mean_lag, catchup_ms))))
      rates
  in
  (* --- fan-out: fixed write burst against 1/2/4/8 standbys --- *)
  header "Replication: fan-out scaling (one burst, N standbys)";
  let counts = if !quick then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let burst = if !quick then 2_000 else 10_000 in
  row "%-10s %10s %12s %14s %14s %12s\n" "standbys" "records" "wall_ms" "shipped_B" "max_lag_B"
    "catchup_ms";
  let sweep =
    List.map
      (fun n ->
        with_journal_dir (fun pdir ->
            let sdirs = List.init n (fun i -> Printf.sprintf "%s_s%d" pdir i) in
            Fun.protect ~finally:(fun () -> List.iter rm_rf sdirs) @@ fun () ->
            let j, primary = open_primary pdir in
            let standbys = List.map (start_standby j primary) sdirs in
            let max_lag = ref 0 in
            let t0 = Unix.gettimeofday () in
            let written = ref 0 in
            while !written < burst do
              Xsb.Journal.append_batch j (List.init 8 (fun k -> edge_mut (!written + k)));
              written := !written + 8;
              List.iter (fun s -> max_lag := max !max_lag (standby_lag j s)) standbys
            done;
            let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
            let t1 = Unix.gettimeofday () in
            while
              List.exists (fun s -> standby_lag j s > 0) standbys
              && Unix.gettimeofday () -. t1 < 30.0
            do
              Thread.delay 0.002
            done;
            let catchup_ms = (Unix.gettimeofday () -. t1) *. 1000.0 in
            let shipped = Xsb_repl.Repl.Primary.shipped_bytes primary in
            List.iter Xsb_repl.Repl.Standby.stop standbys;
            Xsb_repl.Repl.Primary.stop primary;
            Xsb.Journal.close j;
            row "%-10d %10d %12.1f %14d %14d %12.1f\n" n !written wall_ms shipped !max_lag
              catchup_ms;
            (n, !written, wall_ms, shipped, !max_lag, catchup_ms)))
      counts
  in
  (* --- semi-sync vs async commit latency --- *)
  header "Replication: semi-sync (--sync-standby=1) vs async commit latency";
  let writer_counts = if !quick then [ 1; 2 ] else [ 1; 2; 4 ] in
  let per_writer = if !quick then 150 else 500 in
  row "%-10s %8s %12s %12s %12s\n" "mode" "writers" "p50_us" "p99_us" "degraded";
  let percentile sorted p =
    if Array.length sorted = 0 then 0.0
    else
      sorted.(min (Array.length sorted - 1) (int_of_float (p *. float_of_int (Array.length sorted))))
  in
  let latency_run ~semi writers =
    with_journal_dir (fun pdir ->
        with_journal_dir (fun sdir ->
            let j, primary = open_primary pdir in
            let standby = start_standby j primary sdir in
            (* wait for the stream to connect before timing *)
            let t0 = Unix.gettimeofday () in
            while
              (not (Xsb_repl.Repl.Standby.status standby).Xsb_repl.Repl.Standby.connected
              && Unix.gettimeofday () -. t0 < 5.0)
            do
              Thread.delay 0.005
            done;
            let lats = Array.init writers (fun _ -> ref []) in
            let worker w =
              for i = 0 to per_writer - 1 do
                let t0 = Unix.gettimeofday () in
                Xsb.Journal.append j (edge_mut ((w * per_writer) + i));
                Xsb.Journal.barrier j;
                (if semi then
                   let gen, off = Xsb.Journal.durable_position j in
                   ignore
                     (Xsb_repl.Repl.Primary.wait_synced primary ~k:1 ~gen ~off ~timeout_s:1.0));
                lats.(w) := ((Unix.gettimeofday () -. t0) *. 1e6) :: !(lats.(w))
              done
            in
            let threads = List.init writers (fun w -> Thread.create worker w) in
            List.iter Thread.join threads;
            let degraded = Xsb_repl.Repl.Primary.degraded primary in
            Xsb_repl.Repl.Standby.stop standby;
            Xsb_repl.Repl.Primary.stop primary;
            Xsb.Journal.close j;
            let all = Array.of_list (Array.to_list lats |> List.concat_map (fun r -> !r)) in
            Array.sort compare all;
            let p50 = percentile all 0.50 and p99 = percentile all 0.99 in
            row "%-10s %8d %12.1f %12.1f %12b\n"
              (if semi then "semi-sync" else "async")
              writers p50 p99 degraded;
            ((if semi then "semi-sync" else "async"), writers, p50, p99, degraded)))
  in
  let latency =
    List.concat_map (fun w -> [ latency_run ~semi:false w; latency_run ~semi:true w ]) writer_counts
  in
  let oc = open_out "BENCH_repl.json" in
  output_string oc "{ \"experiment\": \"repl\", \"lag_vs_rate\": [\n";
  List.iteri
    (fun i (rate, written, max_lag, mean_lag, catchup_ms) ->
      Printf.fprintf oc
        "  { \"target_records_per_s\": %d, \"records\": %d, \"max_lag_bytes\": %d, \
         \"mean_lag_bytes\": %.0f, \"catchup_ms\": %.1f }%s\n"
        rate written max_lag mean_lag catchup_ms
        (if i = List.length results - 1 then "" else ","))
    results;
  output_string oc "],\n\"standby_sweep\": [\n";
  List.iteri
    (fun i (n, written, wall_ms, shipped, max_lag, catchup_ms) ->
      Printf.fprintf oc
        "  { \"standbys\": %d, \"records\": %d, \"wall_ms\": %.1f, \"shipped_bytes\": %d, \
         \"max_lag_bytes\": %d, \"catchup_ms\": %.1f }%s\n"
        n written wall_ms shipped max_lag catchup_ms
        (if i = List.length sweep - 1 then "" else ","))
    sweep;
  output_string oc "],\n\"commit_latency\": [\n";
  List.iteri
    (fun i (mode, writers, p50, p99, degraded) ->
      Printf.fprintf oc
        "  { \"mode\": \"%s\", \"writers\": %d, \"p50_us\": %.1f, \"p99_us\": %.1f, \
         \"degraded\": %b }%s\n"
        mode writers p50 p99 degraded
        (if i = List.length latency - 1 then "" else ","))
    latency;
  output_string oc "] }\n";
  close_out oc;
  row "wrote BENCH_repl.json\n"

(* ------------------------------------------------------------------ *)
(* Incremental tabling: query throughput and warm-table hit rate on the
   durable server, interleaved with write bursts. A warm hit is a query
   that created no table beyond its private $query table — it was
   answered entirely from completed table space. [variant] tables are
   dropped and recomputed by any write they depend on; [incremental]
   tables survive unrelated writes untouched and are repaired in place
   on pure additions. *)

let incremental_bench () =
  header "Incremental tabling: warm-table hit rate and rps around write bursts";
  let open Xsb_server in
  let n = if !quick then 64 else 200 in
  let queries = if !quick then 40 else 150 in
  let stat_of text name =
    let target = name ^ ": " in
    let tlen = String.length target in
    List.fold_left
      (fun acc line ->
        match acc with
        | Some _ -> acc
        | None ->
            let line = String.trim line in
            if String.length line > tlen && String.sub line 0 tlen = target then
              int_of_string_opt (String.sub line tlen (String.length line - tlen))
            else None)
      None
      (String.split_on_char '\n' text)
  in
  let stat c name =
    match Client.statistics c with
    | Ok text -> Option.value (stat_of text name) ~default:0
    | Error _ -> 0
  in
  let modes =
    [
      ("incremental", ":- table reach/2 as incremental.\n");
      ("variant", ":- table reach/2.\n");
    ]
  in
  row "%-13s %-18s %10s %10s %8s %8s\n" "mode" "phase" "rps" "hit-rate" "repairs" "invalid";
  let results =
    List.concat_map
      (fun (mode_name, directive) ->
        with_journal_dir (fun dir ->
            let cfg =
              {
                Server.default_config with
                Server.port = 0;
                data_dir = Some dir;
                sync = Xsb.Journal.Never;
                default_timeout_ms = 60_000;
                default_max_steps = 0;
              }
            in
            let server = Server.start cfg in
            Fun.protect
              ~finally:(fun () -> Server.stop server)
              (fun () ->
                let c = Client.connect (Server.port server) in
                Fun.protect
                  ~finally:(fun () -> Client.close c)
                  (fun () ->
                    ignore
                      (Client.consult c
                         (directive
                        ^ "reach(X,Y) :- edge(X,Y).\nreach(X,Z) :- reach(X,Y), edge(Y,Z)."));
                    for k = 1 to n do
                      ignore (Client.assert_ c (Printf.sprintf "edge(%d,%d)" k (k + 1)))
                    done;
                    (* complete the table once so every phase starts warm *)
                    ignore (Client.query c "reach(1,X)");
                    let next_edge = ref (n + 1) in
                    let phase name write =
                      let sub0 = stat c "subgoals" in
                      let rep0 = stat c "repairs" in
                      let inv0 = stat c "invalidations" in
                      let t0 = Unix.gettimeofday () in
                      for q = 0 to queries - 1 do
                        (match write with
                        | `None -> ()
                        | `Unrelated -> ignore (Client.assert_ c (Printf.sprintf "noise(%d)" q))
                        | `Related ->
                            ignore
                              (Client.assert_ c
                                 (Printf.sprintf "edge(%d,%d)" !next_edge (!next_edge + 1)));
                            incr next_edge);
                        ignore (Client.query c "reach(1,X)")
                      done;
                      let wall = Unix.gettimeofday () -. t0 in
                      let extra_tables = stat c "subgoals" - sub0 - queries in
                      let hit_rate =
                        float_of_int (queries - min queries (max 0 extra_tables))
                        /. float_of_int queries
                      in
                      let repairs = stat c "repairs" - rep0 in
                      let invalidations = stat c "invalidations" - inv0 in
                      let rps = float_of_int queries /. wall in
                      row "%-13s %-18s %10.0f %10.2f %8d %8d\n" mode_name name rps hit_rate
                        repairs invalidations;
                      (mode_name, name, rps, hit_rate, repairs, invalidations)
                    in
                    (* evaluation order matters: steady-state first, then the
                       write bursts *)
                    let steady = phase "steady" `None in
                    let unrelated = phase "unrelated-writes" `Unrelated in
                    let related = phase "related-writes" `Related in
                    [ steady; unrelated; related ]))))
      modes
  in
  let oc = open_out "BENCH_incremental.json" in
  Printf.fprintf oc
    "{ \"experiment\": \"incremental\", \"chain\": %d, \"queries_per_phase\": %d, \"results\": [\n"
    n queries;
  List.iteri
    (fun i (mode, name, rps, hit_rate, repairs, invalidations) ->
      Printf.fprintf oc
        "  { \"mode\": %S, \"phase\": %S, \"rps\": %.1f, \"warm_hit_rate\": %.3f, \"repairs\": \
         %d, \"invalidations\": %d }%s\n"
        mode name rps hit_rate repairs invalidations
        (if i = List.length results - 1 then "" else ","))
    results;
  output_string oc "] }\n";
  close_out oc;
  row "wrote BENCH_incremental.json\n";
  row "(incremental tables stay warm across unrelated writes and are repaired in\n";
  row " place on additions; variant tables are dropped and recomputed)\n"

(* ------------------------------------------------------------------ *)
(* Call subsumption: variant vs subsumptive tabling on tc and sg. Each
   workload runs three phases per mode — a join whose inner calls are
   bound instances issued while the general table is still producing
   (this is where variant tabling opens a generator table per distinct
   bound call and a subsumed consumer opens none), one open general
   query, and k specific queries against the completed table. Table
   counts, specific-phase rps, and in-bench answer-set verification. *)

let subsumption_bench () =
  header "Call subsumption: table counts and rps, variant vs subsumptive tables";
  let n = if !quick then 48 else 128 in
  let tree = if !quick then 31 else 63 in
  let k = if !quick then 24 else 96 in
  let answers s goal =
    List.sort compare
      (List.map
         (fun (sol : Xsb.Engine.solution) ->
           List.map (fun (_, v) -> Xsb.Term.to_string v) sol.Xsb.Engine.bindings)
         (Xsb.Session.query s goal))
  in
  let workloads =
    [
      ( Printf.sprintf "tc-cycle-%d" n,
        Workloads.left_path_plain ^ "join(Z) :- path(A,B), path(B,Z).\n"
        ^ Workloads.cycle_edges n,
        "path/2",
        "path(X,Y)",
        List.init k (fun i -> Printf.sprintf "path(%d,X)" ((i mod n) + 1)) );
      ( Printf.sprintf "sg-tree-%d" tree,
        Workloads.sg_datalog tree ^ "join(Z) :- sg(A,B), sg(B,Z).\n",
        "sg/2",
        "sg(X,Y)",
        List.init k (fun i -> Printf.sprintf "sg(%d,Y)" (i + 2)) );
    ]
  in
  let run_mode mode (_, text, pred, general, specifics) =
    let directive =
      match mode with
      | `Subsumption -> Printf.sprintf ":- table %s as subsumption.\n" pred
      | `Variant -> Printf.sprintf ":- table %s.\n" pred
    in
    let s = Xsb.Session.create ~scheduling:Xsb.Machine.Batched () in
    Xsb.Session.consult s (directive ^ text);
    (* phase 1: the join, on empty table space — its bound inner calls
       arrive while the general table is incomplete *)
    let join_answers = answers s "join(Z)" in
    (* phase 2: the open general query (the table is complete by now) *)
    let general_answers = answers s general in
    (* phase 3: k specific queries against the completed general table *)
    let t0 = Unix.gettimeofday () in
    let specific_answers = List.map (answers s) specifics in
    let wall = Unix.gettimeofday () -. t0 in
    let st = Xsb.Session.stats s in
    ( join_answers :: general_answers :: specific_answers,
      st.Xsb.Machine.st_subgoals,
      float_of_int (List.length specifics) /. wall,
      st.Xsb.Machine.st_subsumption_hits )
  in
  row "%-14s %-12s %8s %12s %10s %8s\n" "workload" "mode" "tables" "specific-rps" "sub-hits"
    "answers";
  let results =
    List.map
      (fun ((name, _, _, _, _) as w) ->
        let v_answers, v_tables, v_rps, _ = run_mode `Variant w in
        let s_answers, s_tables, s_rps, s_hits = run_mode `Subsumption w in
        let equal = v_answers = s_answers in
        row "%-14s %-12s %8d %12.0f %10d %8s\n" name "variant" v_tables v_rps 0 "";
        row "%-14s %-12s %8d %12.0f %10d %8s\n" name "subsumption" s_tables s_rps s_hits
          (if equal then "equal" else "DIFFER");
        if not equal then row "  !! answer sets differ between modes on %s\n" name;
        if s_tables >= v_tables then
          row "  !! subsumption did not reduce table count on %s (%d vs %d)\n" name s_tables
            v_tables;
        (name, v_tables, s_tables, v_rps, s_rps, s_hits, equal))
      workloads
  in
  let oc = open_out "BENCH_subsumption.json" in
  Printf.fprintf oc
    "{ \"experiment\": \"subsumption\", \"specific_queries\": %d, \"results\": [\n" k;
  List.iteri
    (fun i (name, v_tables, s_tables, v_rps, s_rps, s_hits, equal) ->
      Printf.fprintf oc
        "  { \"workload\": %S, \"variant_tables\": %d, \"subsumption_tables\": %d, \
         \"variant_specific_rps\": %.1f, \"subsumption_specific_rps\": %.1f, \
         \"subsumption_hits\": %d, \"answers_equal\": %b }%s\n"
        name v_tables s_tables v_rps s_rps s_hits equal
        (if i = List.length results - 1 then "" else ","))
    results;
  output_string oc "] }\n";
  close_out oc;
  row "wrote BENCH_subsumption.json\n";
  row "(a subsumed consumer reuses the general table's answers through the\n";
  row " time-stamped index; variant tabling opens a table per distinct bound call)\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test per table/figure *)

let bechamel_tests () =
  let open Bechamel in
  let win = Workloads.win_program ~neg:`Tnot 7 in
  let win_session = fresh_session win in
  let t_table2 =
    Test.make ~name:"table2:win-slg-h7"
      (Staged.stage (fun () ->
           Xsb.Engine.reset_tables (Xsb.Session.engine win_session);
           ignore (Xsb.Session.succeeds win_session "win(1)")))
  in
  let cyc = fresh_session (Workloads.left_path_tabled ^ Workloads.cycle_edges 128) in
  let t_fig5 =
    Test.make ~name:"figure5:path-cycle-128"
      (Staged.stage (fun () ->
           Xsb.Engine.reset_tables (Xsb.Session.engine cyc);
           ignore (Xsb.Session.count cyc "path(1,X)")))
  in
  let join_thunk = Xsb.Join.prepare_wam ~n:500 in
  let t_table3 =
    Test.make ~name:"table3:wam-join-500" (Staged.stage (fun () -> ignore (join_thunk ())))
  in
  let program =
    Xsb.Datalog.of_clauses
      (Xsb.Parser.program_of_string (Workloads.left_path_plain ^ Workloads.cycle_edges 128))
  in
  let t_coral =
    Test.make ~name:"figure5:coral-cycle-128"
      (Staged.stage (fun () ->
           ignore (Xsb.Magic.answers program (Xsb.Parser.term_of_string "path(1,X)"))))
  in
  [ t_table2; t_fig5; t_table3; t_coral ]

let bechamel () =
  header "Bechamel micro-benchmarks (ns/run, OLS estimate)";
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> row "%-28s %14.0f ns/run\n" name est
          | _ -> row "%-28s (no estimate)\n" name)
        analyzed)
    (bechamel_tests ())

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table2", table2);
    ("figure2", figure2);
    ("figure5", figure5);
    ("table3", table3);
    ("section5", section5_ratios);
    ("append", append_bench);
    ("slg_vs_sld", slg_vs_sld);
    ("meta", meta_overhead);
    ("sld_overhead", sld_overhead);
    ("load", load_speeds);
    ("hilog", hilog_overhead);
    ("answer_index", answer_index);
    ("scheduling", scheduling);
    ("server", server_bench);
    ("metrics", metrics_bench);
    ("journal", journal_bench);
    ("repl", repl_bench);
    ("incremental", incremental_bench);
    ("subsumption", subsumption_bench);
    ("bechamel", bechamel);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    List.filter
      (fun a ->
        if a = "quick" then begin
          quick := true;
          false
        end
        else true)
      args
  in
  let selected =
    if args = [] then experiments
    else List.filter (fun (name, _) -> List.exists (fun a -> a = name) args) experiments
  in
  if selected = [] then begin
    Printf.printf "unknown experiment; available: %s quick\n"
      (String.concat " " (List.map fst experiments));
    exit 1
  end;
  List.iter (fun (_, f) -> f ()) selected
